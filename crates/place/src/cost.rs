//! Half-perimeter wirelength cost.

use fpga::{Device, Placement};
use netlist::{NetId, Netlist};

/// VPR's fanout compensation factor `q(n)` for HPWL.
pub(crate) fn q_factor(terminals: usize) -> f64 {
    // Piecewise values from Cheng's tables as used by VPR, flattened
    // to a smooth approximation beyond 3 terminals.
    match terminals {
        0..=3 => 1.0,
        t => 1.0 + 0.0384 * (t as f64 - 3.0) + 0.58 * ((t as f64 - 3.0) / 50.0),
    }
}

/// Half-perimeter bounding-box cost of one net under a placement.
///
/// Unplaced terminals are ignored; a net with fewer than two placed
/// terminals costs zero.
pub fn net_bbox_cost(nl: &Netlist, device: &Device, placement: &Placement, net: NetId) -> f64 {
    let Ok(n) = nl.net(net) else { return 0.0 };
    let (w, h) = (device.width(), device.height());
    let mut count = 0usize;
    let (mut x0, mut y0, mut x1, mut y1) = (u16::MAX, u16::MAX, 0u16, 0u16);
    let mut visit = |cell: netlist::CellId| {
        if let Some(loc) = placement.loc_of(cell) {
            let c = loc.proxy_coord(w, h);
            x0 = x0.min(c.x);
            y0 = y0.min(c.y);
            x1 = x1.max(c.x);
            y1 = y1.max(c.y);
            count += 1;
        }
    };
    if let Some(driver) = n.driver {
        visit(driver);
    }
    for s in &n.sinks {
        visit(s.cell);
    }
    if count < 2 {
        return 0.0;
    }
    let span = (x1 - x0) as f64 + (y1 - y0) as f64;
    q_factor(count) * span
}

/// Total HPWL cost over all nets.
pub fn total_wirelength_cost(nl: &Netlist, device: &Device, placement: &Placement) -> f64 {
    nl.nets()
        .map(|(id, _)| net_bbox_cost(nl, device, placement, id))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga::{BelLoc, ClbSlot};
    use netlist::TruthTable;

    fn two_cell_design() -> (Netlist, Device) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let u = nl
            .add_lut("u", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        (nl, Device::new(8, 8, 4, 2).unwrap())
    }

    #[test]
    fn cost_grows_with_distance() {
        let (nl, dev) = two_cell_design();
        let a = nl.find_cell("a").unwrap();
        let u = nl.find_cell("u").unwrap();
        let near = {
            let mut p = Placement::new(nl.cell_capacity());
            p.place(
                a,
                BelLoc::Iob(fpga::IobSite {
                    side: fpga::IobSide::West,
                    pos: 0,
                    k: 0,
                }),
            )
            .unwrap();
            p.place(u, BelLoc::clb(0, 0, ClbSlot::LutF)).unwrap();
            total_wirelength_cost(&nl, &dev, &p)
        };
        let far = {
            let mut p = Placement::new(nl.cell_capacity());
            p.place(
                a,
                BelLoc::Iob(fpga::IobSite {
                    side: fpga::IobSide::West,
                    pos: 0,
                    k: 0,
                }),
            )
            .unwrap();
            p.place(u, BelLoc::clb(7, 7, ClbSlot::LutF)).unwrap();
            total_wirelength_cost(&nl, &dev, &p)
        };
        assert!(far > near);
    }

    #[test]
    fn single_terminal_nets_cost_zero() {
        let (nl, dev) = two_cell_design();
        let p = Placement::new(nl.cell_capacity());
        assert_eq!(total_wirelength_cost(&nl, &dev, &p), 0.0);
    }

    #[test]
    fn q_factor_monotone() {
        assert_eq!(q_factor(2), 1.0);
        assert!(q_factor(10) > q_factor(4));
        assert!(q_factor(50) > q_factor(10));
    }
}

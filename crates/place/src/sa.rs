//! The simulated-annealing engine.

use std::error::Error;
use std::fmt;

use fpga::{BelLoc, Device, Placement, Rect};
use netlist::{CellId, CellKind, NetId, Netlist, NetlistError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{Constraints, PlacerConfig};
use crate::cost::net_bbox_cost;
use crate::initial::{clip, compatible, initial_place, slots_for};

/// Errors from placement.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlaceError {
    /// No free compatible site exists for the cell in its region.
    NoSpace(CellId),
    /// Underlying netlist inconsistency.
    Netlist(NetlistError),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSpace(c) => write!(f, "no free compatible site for cell {c}"),
            Self::Netlist(e) => write!(f, "netlist error during placement: {e}"),
        }
    }
}

impl Error for PlaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for PlaceError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

/// Result of a placement run.
#[derive(Debug, Clone)]
pub struct PlaceOutcome {
    /// The final placement.
    pub placement: Placement,
    /// Final HPWL cost.
    pub cost: f64,
    /// Moves evaluated — the paper-comparable CAD-effort metric.
    pub moves_evaluated: u64,
    /// Moves accepted.
    pub moves_accepted: u64,
    /// Temperatures annealed through.
    pub temperatures: usize,
}

/// Places a netlist on a device under constraints.
///
/// `initial` seeds the placement (locked cells *must* be placed in it);
/// unplaced movable cells are constructively placed first, then the
/// movable set is annealed. With `Constraints::free()` and no initial
/// placement this is a full VPR-style run.
///
/// # Errors
///
/// Returns [`PlaceError::NoSpace`] when a region cannot hold its cells,
/// or [`PlaceError::Netlist`] on graph inconsistencies.
pub fn place(
    nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    initial: Option<Placement>,
    config: &PlacerConfig,
) -> Result<PlaceOutcome, PlaceError> {
    let mut placement = initial.unwrap_or_else(|| Placement::new(nl.cell_capacity()));
    initial_place(nl, device, constraints, &mut placement, config.seed)?;

    let movable: Vec<CellId> = nl
        .cells()
        .filter(|(id, _)| !constraints.is_locked(*id))
        .map(|(id, _)| id)
        .collect();

    // Nets incident to each cell (movable cells only need them).
    let mut incident: Vec<Vec<NetId>> = vec![Vec::new(); nl.cell_capacity()];
    for (id, cell) in nl.cells() {
        let mut nets: Vec<NetId> = cell.inputs.clone();
        if let Some(o) = cell.output {
            nets.push(o);
        }
        nets.sort_unstable();
        nets.dedup();
        incident[id.index()] = nets;
    }

    // Per-net cost cache.
    let mut net_cost: Vec<f64> = vec![0.0; nl.net_capacity()];
    let mut cost = 0.0;
    for (id, _) in nl.nets() {
        let c = net_bbox_cost(nl, device, &placement, id);
        net_cost[id.index()] = c;
        cost += c;
    }

    let mut outcome = PlaceOutcome {
        placement,
        cost,
        moves_evaluated: 0,
        moves_accepted: 0,
        temperatures: 0,
    };
    if movable.len() < 2 {
        return Ok(outcome);
    }

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut annealer = Annealer {
        nl,
        device,
        constraints,
        incident: &incident,
        rng: &mut rng,
        placement: &mut outcome.placement,
        net_cost: &mut net_cost,
        cost: &mut outcome.cost,
        scratch: Vec::new(),
    };

    // Estimate the starting temperature from random move deltas.
    let probes = (movable.len() * 4).clamp(16, 512);
    let mut deltas = Vec::with_capacity(probes);
    for _ in 0..probes {
        if let Some(d) = annealer.try_move(&movable, f64::INFINITY) {
            deltas.push(d);
        }
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
    let var =
        deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len().max(1) as f64;
    let mut temp = (20.0 * var.sqrt()).max(1.0);

    let inner = ((movable.len() as f64).powf(4.0 / 3.0) * config.inner_num).max(8.0) as u64;
    let num_nets = nl.num_nets().max(1) as f64;
    let mut rlim = f64::from(device.width().max(device.height()));

    for _ in 0..config.max_temps {
        outcome.temperatures += 1;
        let mut accepted = 0u64;
        for _ in 0..inner {
            outcome.moves_evaluated += 1;
            let window = rlim.round().max(1.0) as u16;
            if annealer.anneal_move(&movable, temp, window).is_some() {
                accepted += 1;
            }
        }
        outcome.moves_accepted += accepted;
        let rate = accepted as f64 / inner as f64;
        // VPR schedule.
        let alpha = if rate > 0.96 {
            0.5
        } else if rate > 0.8 {
            0.9
        } else if rate > 0.15 {
            0.95
        } else {
            0.8
        };
        temp *= alpha;
        rlim =
            (rlim * (1.0 - 0.44 + rate)).clamp(1.0, f64::from(device.width().max(device.height())));
        if temp < config.exit_ratio * *annealer.cost / num_nets {
            break;
        }
    }
    Ok(outcome)
}

struct Annealer<'a> {
    nl: &'a Netlist,
    device: &'a Device,
    constraints: &'a Constraints,
    incident: &'a [Vec<NetId>],
    rng: &'a mut SmallRng,
    placement: &'a mut Placement,
    net_cost: &'a mut [f64],
    cost: &'a mut f64,
    scratch: Vec<NetId>,
}

impl Annealer<'_> {
    /// Proposes and (per Metropolis at `temp`) applies one move over
    /// the full device. Returns the delta if accepted.
    fn try_move(&mut self, movable: &[CellId], temp: f64) -> Option<f64> {
        let window = self.device.width().max(self.device.height());
        self.anneal_move(movable, temp, window)
    }

    fn anneal_move(&mut self, movable: &[CellId], temp: f64, window: u16) -> Option<f64> {
        let cell = movable[self.rng.gen_range(0..movable.len())];
        let kind = &self.nl.cell(cell).ok()?.kind;
        let cur = self.placement.loc_of(cell)?;
        let target = self.propose_target(cell, kind, cur, window)?;
        if target == cur {
            return None;
        }
        // Occupant handling.
        let occupant = self.placement.cell_at(target);
        if let Some(other) = occupant {
            if self.constraints.is_locked(other) {
                return None;
            }
            let other_kind = &self.nl.cell(other).ok()?.kind;
            if !compatible(other_kind, cur) || !compatible(kind, target) {
                return None;
            }
            // The displaced cell must accept our old location.
            if let Some(rects) = self.constraints.region_of(other) {
                match cur.coord() {
                    Some(c) if rects.iter().any(|r| r.contains(c)) => {}
                    _ => return None,
                }
            }
        } else if !compatible(kind, target) {
            return None;
        }

        // Affected nets.
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.incident[cell.index()]);
        if let Some(other) = occupant {
            self.scratch
                .extend_from_slice(&self.incident[other.index()]);
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        let old: f64 = self.scratch.iter().map(|n| self.net_cost[n.index()]).sum();

        // Apply.
        match occupant {
            Some(other) => self.placement.swap(cell, other).ok()?,
            None => self.placement.place(cell, target).ok()?,
        }
        let mut new = 0.0;
        for &n in &self.scratch {
            new += net_bbox_cost(self.nl, self.device, self.placement, n);
        }
        let delta = new - old;
        let accept = delta <= 0.0
            || (temp.is_finite()
                && self.rng.gen_range(0.0..1.0) < (-delta / temp.max(1e-12)).exp())
            || temp.is_infinite();
        if !accept {
            // Revert.
            match occupant {
                Some(other) => {
                    let _ = self.placement.swap(cell, other);
                }
                None => {
                    let _ = self.placement.place(cell, cur);
                }
            }
            return None;
        }
        for &n in &self.scratch {
            let c = net_bbox_cost(self.nl, self.device, self.placement, n);
            *self.cost += c - self.net_cost[n.index()];
            self.net_cost[n.index()] = c;
        }
        Some(delta)
    }

    fn propose_target(
        &mut self,
        cell: CellId,
        kind: &CellKind,
        cur: BelLoc,
        window: u16,
    ) -> Option<BelLoc> {
        match kind {
            CellKind::Input | CellKind::Output => {
                // IOBs move along the perimeter freely.
                let sites: Vec<_> = self.device.iob_sites().collect();
                Some(BelLoc::Iob(sites[self.rng.gen_range(0..sites.len())]))
            }
            CellKind::Lut(_) | CellKind::Ff { .. } => {
                let c = cur.coord()?;
                let b = self.device.bounds();
                let win = Rect::new(
                    c.x.saturating_sub(window),
                    c.y.saturating_sub(window),
                    (c.x + window).min(b.x1),
                    (c.y + window).min(b.y1),
                );
                let region = match self.constraints.region_of(cell) {
                    None => clip(win, b)?,
                    Some(rects) => {
                        // Pick one of the region rectangles; prefer the
                        // window intersection when it exists.
                        let r = rects[self.rng.gen_range(0..rects.len())];
                        clip(r, win).or_else(|| clip(r, b))?
                    }
                };
                let x = self.rng.gen_range(region.x0..=region.x1);
                let y = self.rng.gen_range(region.y0..=region.y1);
                let slots = slots_for(kind);
                let slot = slots[self.rng.gen_range(0..slots.len())];
                Some(BelLoc::clb(x, y, slot))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::total_wirelength_cost;
    use netlist::TruthTable;

    /// Two clusters of tightly connected LUTs.
    fn clustered_design() -> Netlist {
        let mut nl = Netlist::new("clusters");
        for g in 0..2 {
            let a = nl.add_input(format!("a{g}")).unwrap();
            let mut prev = nl.cell_output(a).unwrap();
            for i in 0..10 {
                let u = nl
                    .add_lut(format!("g{g}_u{i}"), TruthTable::not(), &[prev])
                    .unwrap();
                prev = nl.cell_output(u).unwrap();
            }
            nl.add_output(format!("y{g}"), prev).unwrap();
        }
        nl
    }

    #[test]
    fn annealing_reduces_cost() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        // Random initial placement cost:
        let mut init = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &Constraints::free(), &mut init, 77).unwrap();
        let init_cost = total_wirelength_cost(&nl, &dev, &init);
        let out = place(
            &nl,
            &dev,
            &Constraints::free(),
            Some(init),
            &PlacerConfig::default(),
        )
        .unwrap();
        assert!(out.cost < init_cost, "{} !< {init_cost}", out.cost);
        assert!(out.moves_evaluated > 0);
        // Cache consistency: recomputed cost matches incremental cost.
        let recomputed = total_wirelength_cost(&nl, &dev, &out.placement);
        assert!((recomputed - out.cost).abs() < 1e-6);
    }

    #[test]
    fn locked_cells_do_not_move() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut init = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &Constraints::free(), &mut init, 5).unwrap();
        let locked_cell = nl.find_cell("g0_u0").unwrap();
        let pinned = init.loc_of(locked_cell).unwrap();
        let mut cons = Constraints::free();
        cons.lock(locked_cell);
        let out = place(&nl, &dev, &cons, Some(init), &PlacerConfig::fast(5)).unwrap();
        assert_eq!(out.placement.loc_of(locked_cell), Some(pinned));
    }

    #[test]
    fn regions_are_respected_through_annealing() {
        let nl = clustered_design();
        let dev = Device::new(10, 10, 4, 2).unwrap();
        let region = Rect::new(0, 0, 3, 3);
        let mut cons = Constraints::free();
        let confined: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| c.is_logic())
            .map(|(id, _)| id)
            .collect();
        for &id in &confined {
            cons.confine(id, region);
        }
        let out = place(&nl, &dev, &cons, None, &PlacerConfig::fast(11)).unwrap();
        for &id in &confined {
            let loc = out.placement.loc_of(id).unwrap();
            assert!(
                region.contains(loc.coord().unwrap()),
                "{id} escaped to {loc}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let run = || {
            let out = place(
                &nl,
                &dev,
                &Constraints::free(),
                None,
                &PlacerConfig::fast(42),
            )
            .unwrap();
            let locs: Vec<_> = out.placement.iter().collect();
            (locs, out.cost.to_bits(), out.moves_evaluated)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn effort_scales_with_movable_count() {
        let dev = Device::new(12, 12, 4, 2).unwrap();
        let small = {
            let mut nl = Netlist::new("s");
            let a = nl.add_input("a").unwrap();
            let mut prev = nl.cell_output(a).unwrap();
            for i in 0..4 {
                let u = nl
                    .add_lut(format!("u{i}"), TruthTable::not(), &[prev])
                    .unwrap();
                prev = nl.cell_output(u).unwrap();
            }
            nl.add_output("y", prev).unwrap();
            nl
        };
        let big = clustered_design();
        let cfg = PlacerConfig {
            max_temps: 10,
            ..PlacerConfig::default()
        };
        let e_small = place(&small, &dev, &Constraints::free(), None, &cfg)
            .unwrap()
            .moves_evaluated;
        let e_big = place(&big, &dev, &Constraints::free(), None, &cfg)
            .unwrap()
            .moves_evaluated;
        assert!(e_big > e_small);
    }

    #[test]
    fn fully_locked_design_returns_immediately() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut init = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &Constraints::free(), &mut init, 5).unwrap();
        let mut cons = Constraints::free();
        cons.lock_all(nl.cells().map(|(id, _)| id));
        let out = place(&nl, &dev, &cons, Some(init), &PlacerConfig::default()).unwrap();
        assert_eq!(out.moves_evaluated, 0);
        assert_eq!(out.temperatures, 0);
    }

    #[test]
    fn no_space_is_reported() {
        let nl = clustered_design(); // 20 LUTs
        let dev = Device::new(2, 2, 4, 2).unwrap(); // 8 LUT slots
        let err = place(
            &nl,
            &dev,
            &Constraints::free(),
            None,
            &PlacerConfig::fast(1),
        );
        assert!(matches!(err, Err(PlaceError::NoSpace(_))));
    }
}

//! The simulated-annealing engine.

use std::error::Error;
use std::fmt;

use fpga::{BelLoc, Device, Placement, Rect};
use netlist::{CellId, CellKind, NetId, Netlist, NetlistError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{Constraints, PlacerConfig};
use crate::cost::q_factor;
use crate::initial::{clip, compatible, initial_place, slots_for};

/// Errors from placement.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlaceError {
    /// No free compatible site exists for the cell in its region.
    NoSpace(CellId),
    /// Underlying netlist inconsistency.
    Netlist(NetlistError),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSpace(c) => write!(f, "no free compatible site for cell {c}"),
            Self::Netlist(e) => write!(f, "netlist error during placement: {e}"),
        }
    }
}

impl Error for PlaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for PlaceError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

/// Result of a placement run.
#[derive(Debug, Clone)]
pub struct PlaceOutcome {
    /// The final placement.
    pub placement: Placement,
    /// Final HPWL cost.
    pub cost: f64,
    /// Moves evaluated — the paper-comparable CAD-effort metric. The
    /// analytical engine folds its conjugate-gradient iterations in
    /// here too, so engine efforts stay comparable.
    pub moves_evaluated: u64,
    /// Moves accepted.
    pub moves_accepted: u64,
    /// Temperatures annealed through.
    pub temperatures: usize,
    /// Conjugate-gradient iterations (zero for the pure annealer).
    pub cg_iterations: u64,
}

/// How the annealing schedule picks its starting temperature.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TempInit {
    /// Calibrate from the cost variance of random probe moves (the
    /// full VPR run). Probe moves are *applied* (`T = ∞` accepts
    /// everything), so this is destructive — only for cold starts.
    Probe,
    /// `T0 = fraction × cost / nets` — a non-destructive low start
    /// for polishing an already-good placement.
    CostFraction(f64),
}

/// One annealing schedule: the full run and the analytical polish
/// share the move engine and differ only in these knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Schedule {
    pub temp_init: TempInit,
    pub inner_num: f64,
    pub exit_ratio: f64,
    pub max_temps: usize,
    /// Starting move-window radius (the full run uses the device
    /// diagonal; the polish starts local).
    pub rlim0: f64,
}

impl Schedule {
    pub(crate) fn full(config: &PlacerConfig, device: &Device) -> Self {
        Self {
            temp_init: TempInit::Probe,
            inner_num: config.inner_num,
            exit_ratio: config.exit_ratio,
            max_temps: config.max_temps,
            rlim0: f64::from(device.width().max(device.height())),
        }
    }

    pub(crate) fn polish(config: &PlacerConfig, device: &Device) -> Self {
        Self {
            temp_init: TempInit::CostFraction(0.65),
            inner_num: config.polish_inner,
            exit_ratio: config.exit_ratio,
            max_temps: config.polish_temps,
            rlim0: f64::from(device.width().max(device.height()) / 2).max(3.0),
        }
    }
}

/// Places a netlist on a device under constraints.
///
/// `initial` seeds the placement (locked cells *must* be placed in it);
/// unplaced movable cells are constructively placed first, then the
/// movable set is annealed. With `Constraints::free()` and no initial
/// placement this is a full VPR-style run.
///
/// This is the raw annealing engine; [`crate::run_placer`] dispatches
/// between it and the analytical engine via
/// [`crate::PlacerConfig::engine`].
///
/// # Errors
///
/// Returns [`PlaceError::NoSpace`] when a region cannot hold its cells,
/// or [`PlaceError::Netlist`] on graph inconsistencies.
pub fn place(
    nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    initial: Option<Placement>,
    config: &PlacerConfig,
) -> Result<PlaceOutcome, PlaceError> {
    let mut placement = initial.unwrap_or_else(|| Placement::new(nl.cell_capacity()));
    initial_place(nl, device, constraints, &mut placement, config.seed)?;
    anneal(
        nl,
        device,
        constraints,
        placement,
        config.seed,
        Schedule::full(config, device),
    )
}

/// Runs one annealing schedule over an already-complete placement.
/// Shared by [`place`] (full schedule) and the analytical engine's
/// polish phase.
pub(crate) fn anneal(
    nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    placement: Placement,
    seed: u64,
    schedule: Schedule,
) -> Result<PlaceOutcome, PlaceError> {
    let movable: Vec<CellId> = nl
        .cells()
        .filter(|(id, _)| !constraints.is_locked(*id))
        .map(|(id, _)| id)
        .collect();

    // Nets incident to each cell, with the cell's terminal
    // multiplicity on the net (HPWL counts every sink occurrence, so
    // a cell sinking a net twice moves two bounding-box points).
    let mut incident: Vec<Vec<(NetId, u32)>> = vec![Vec::new(); nl.cell_capacity()];
    for (id, cell) in nl.cells() {
        let mut nets: Vec<NetId> = cell.inputs.clone();
        if let Some(o) = cell.output {
            nets.push(o);
        }
        nets.sort_unstable();
        let with_mult = &mut incident[id.index()];
        for n in nets {
            match with_mult.last_mut() {
                Some((last, m)) if *last == n => *m += 1,
                _ => with_mult.push((n, 1)),
            }
        }
    }

    // Per-net incremental bounding-box cache.
    let mut net_box: Vec<NetBox> = vec![NetBox::default(); nl.net_capacity()];
    let mut cost = 0.0;
    for (id, _) in nl.nets() {
        let b = NetBox::scan(nl, device, &placement, id);
        cost += b.cost;
        net_box[id.index()] = b;
    }

    let mut outcome = PlaceOutcome {
        placement,
        cost,
        moves_evaluated: 0,
        moves_accepted: 0,
        temperatures: 0,
        cg_iterations: 0,
    };
    if movable.len() < 2 {
        return Ok(outcome);
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut annealer = Annealer {
        nl,
        device,
        constraints,
        incident: &incident,
        rng: &mut rng,
        placement: &mut outcome.placement,
        net_box: &mut net_box,
        cost: &mut outcome.cost,
        scratch: Vec::new(),
        candidates: Vec::new(),
    };

    let num_nets = nl.num_nets().max(1) as f64;
    let mut temp = match schedule.temp_init {
        TempInit::Probe => {
            // Estimate the starting temperature from random move deltas.
            let probes = (movable.len() * 4).clamp(16, 512);
            let mut deltas = Vec::with_capacity(probes);
            for _ in 0..probes {
                if let Some(d) = annealer.try_move(&movable, f64::INFINITY) {
                    deltas.push(d);
                }
            }
            let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
            let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>()
                / deltas.len().max(1) as f64;
            (20.0 * var.sqrt()).max(1.0)
        }
        TempInit::CostFraction(f) => (f * *annealer.cost / num_nets).max(1e-3),
    };

    let inner = ((movable.len() as f64).powf(4.0 / 3.0) * schedule.inner_num).max(8.0) as u64;
    let mut rlim = schedule.rlim0;

    for _ in 0..schedule.max_temps {
        outcome.temperatures += 1;
        let mut accepted = 0u64;
        for _ in 0..inner {
            outcome.moves_evaluated += 1;
            let window = rlim.round().max(1.0) as u16;
            if annealer.anneal_move(&movable, temp, window).is_some() {
                accepted += 1;
            }
        }
        outcome.moves_accepted += accepted;
        let rate = accepted as f64 / inner as f64;
        // VPR schedule.
        let alpha = if rate > 0.96 {
            0.5
        } else if rate > 0.8 {
            0.9
        } else if rate > 0.15 {
            0.95
        } else {
            0.8
        };
        temp *= alpha;
        rlim =
            (rlim * (1.0 - 0.44 + rate)).clamp(1.0, f64::from(device.width().max(device.height())));
        if temp < schedule.exit_ratio * *annealer.cost / num_nets {
            break;
        }
    }
    Ok(outcome)
}

/// One net's cached bounding box: corners, how many placed terminals
/// sit on each edge, and the resulting HPWL cost. A move updates the
/// box incrementally; only when a departing terminal empties the edge
/// that defined a bound does the net get rescanned.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct NetBox {
    x0: u16,
    y0: u16,
    x1: u16,
    y1: u16,
    on_x0: u32,
    on_x1: u32,
    on_y0: u32,
    on_y1: u32,
    /// Placed terminal occurrences (driver + every sink occurrence).
    terms: u32,
    cost: f64,
}

impl NetBox {
    /// Full scan of the net under the current placement.
    fn scan(nl: &Netlist, device: &Device, placement: &Placement, net: NetId) -> Self {
        let Ok(n) = nl.net(net) else {
            return Self::default();
        };
        let (w, h) = (device.width(), device.height());
        let mut b = Self {
            x0: u16::MAX,
            y0: u16::MAX,
            ..Self::default()
        };
        let mut visit = |cell: CellId| {
            if let Some(loc) = placement.loc_of(cell) {
                let c = loc.proxy_coord(w, h);
                b.x0 = b.x0.min(c.x);
                b.y0 = b.y0.min(c.y);
                b.x1 = b.x1.max(c.x);
                b.y1 = b.y1.max(c.y);
                b.terms += 1;
            }
        };
        if let Some(driver) = n.driver {
            visit(driver);
        }
        for s in &n.sinks {
            visit(s.cell);
        }
        if b.terms == 0 {
            return Self::default();
        }
        // Second pass for the edge counts (bounds are known now).
        let mut count = |cell: CellId| {
            if let Some(loc) = placement.loc_of(cell) {
                let c = loc.proxy_coord(w, h);
                b.on_x0 += u32::from(c.x == b.x0);
                b.on_x1 += u32::from(c.x == b.x1);
                b.on_y0 += u32::from(c.y == b.y0);
                b.on_y1 += u32::from(c.y == b.y1);
            }
        };
        if let Some(driver) = n.driver {
            count(driver);
        }
        for s in &n.sinks {
            count(s.cell);
        }
        b.recost();
        b
    }

    fn recost(&mut self) {
        self.cost = if self.terms < 2 {
            0.0
        } else {
            let span = f64::from(self.x1 - self.x0) + f64::from(self.y1 - self.y0);
            q_factor(self.terms as usize) * span
        };
    }

    /// Removes `m` terminal occurrences at `c`. Returns `false` when a
    /// bound-defining edge emptied and the box needs a rescan.
    fn remove(&mut self, c: fpga::Coord, m: u32) -> bool {
        if c.x == self.x0 {
            self.on_x0 -= m.min(self.on_x0);
            if self.on_x0 == 0 {
                return false;
            }
        }
        if c.x == self.x1 {
            self.on_x1 -= m.min(self.on_x1);
            if self.on_x1 == 0 {
                return false;
            }
        }
        if c.y == self.y0 {
            self.on_y0 -= m.min(self.on_y0);
            if self.on_y0 == 0 {
                return false;
            }
        }
        if c.y == self.y1 {
            self.on_y1 -= m.min(self.on_y1);
            if self.on_y1 == 0 {
                return false;
            }
        }
        true
    }

    /// Adds `m` terminal occurrences at `c`, growing the box if needed.
    fn add(&mut self, c: fpga::Coord, m: u32) {
        if c.x < self.x0 {
            self.x0 = c.x;
            self.on_x0 = m;
        } else if c.x == self.x0 {
            self.on_x0 += m;
        }
        if c.x > self.x1 {
            self.x1 = c.x;
            self.on_x1 = m;
        } else if c.x == self.x1 {
            self.on_x1 += m;
        }
        if c.y < self.y0 {
            self.y0 = c.y;
            self.on_y0 = m;
        } else if c.y == self.y0 {
            self.on_y0 += m;
        }
        if c.y > self.y1 {
            self.y1 = c.y;
            self.on_y1 = m;
        } else if c.y == self.y1 {
            self.on_y1 += m;
        }
    }
}

struct Annealer<'a> {
    nl: &'a Netlist,
    device: &'a Device,
    constraints: &'a Constraints,
    incident: &'a [Vec<(NetId, u32)>],
    rng: &'a mut SmallRng,
    placement: &'a mut Placement,
    net_box: &'a mut [NetBox],
    cost: &'a mut f64,
    scratch: Vec<NetId>,
    candidates: Vec<(NetId, NetBox)>,
}

impl Annealer<'_> {
    /// Proposes and (per Metropolis at `temp`) applies one move over
    /// the full device. Returns the delta if accepted.
    fn try_move(&mut self, movable: &[CellId], temp: f64) -> Option<f64> {
        let window = self.device.width().max(self.device.height());
        self.anneal_move(movable, temp, window)
    }

    fn anneal_move(&mut self, movable: &[CellId], temp: f64, window: u16) -> Option<f64> {
        let cell = movable[self.rng.gen_range(0..movable.len())];
        let kind = &self.nl.cell(cell).ok()?.kind;
        let cur = self.placement.loc_of(cell)?;
        let target = self.propose_target(cell, kind, cur, window)?;
        if target == cur {
            return None;
        }
        // Occupant handling.
        let occupant = self.placement.cell_at(target);
        if let Some(other) = occupant {
            if self.constraints.is_locked(other) {
                return None;
            }
            let other_kind = &self.nl.cell(other).ok()?.kind;
            if !compatible(other_kind, cur) || !compatible(kind, target) {
                return None;
            }
            // The displaced cell must accept our old location.
            if let Some(rects) = self.constraints.region_of(other) {
                match cur.coord() {
                    Some(c) if rects.iter().any(|r| r.contains(c)) => {}
                    _ => return None,
                }
            }
        } else if !compatible(kind, target) {
            return None;
        }

        // Affected nets.
        self.scratch.clear();
        self.scratch
            .extend(self.incident[cell.index()].iter().map(|&(n, _)| n));
        if let Some(other) = occupant {
            self.scratch
                .extend(self.incident[other.index()].iter().map(|&(n, _)| n));
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        let old: f64 = self
            .scratch
            .iter()
            .map(|n| self.net_box[n.index()].cost)
            .sum();

        // Apply, then update each touched net's box incrementally
        // (rescanning only when a bound-defining edge empties).
        match occupant {
            Some(other) => self.placement.swap(cell, other).ok()?,
            None => self.placement.place(cell, target).ok()?,
        }
        let moved: [(CellId, BelLoc); 2] = match occupant {
            Some(other) => [(cell, cur), (other, target)],
            None => [(cell, cur), (cell, cur)],
        };
        let moved = &moved[..if occupant.is_some() { 2 } else { 1 }];
        let scratch = std::mem::take(&mut self.scratch);
        self.candidates.clear();
        let mut new = 0.0;
        for &n in &scratch {
            let b = self.candidate_box(n, moved);
            new += b.cost;
            self.candidates.push((n, b));
        }
        self.scratch = scratch;
        let delta = new - old;
        let accept = delta <= 0.0
            || (temp.is_finite()
                && self.rng.gen_range(0.0..1.0) < (-delta / temp.max(1e-12)).exp())
            || temp.is_infinite();
        if !accept {
            // Revert.
            match occupant {
                Some(other) => {
                    let _ = self.placement.swap(cell, other);
                }
                None => {
                    let _ = self.placement.place(cell, cur);
                }
            }
            return None;
        }
        for &(n, b) in &self.candidates {
            *self.cost += b.cost - self.net_box[n.index()].cost;
            self.net_box[n.index()] = b;
        }
        Some(delta)
    }

    /// The net's bounding box after the applied move: start from the
    /// cached box, remove each moved terminal at its old proxy
    /// coordinate and re-add it at the new one. Falls back to a full
    /// scan when a removal empties the edge that defined a bound.
    fn candidate_box(&self, net: NetId, moved: &[(CellId, BelLoc)]) -> NetBox {
        let (w, h) = (self.device.width(), self.device.height());
        let mut b = self.net_box[net.index()];
        for &(cell, old) in moved {
            let nets = &self.incident[cell.index()];
            let Ok(i) = nets.binary_search_by_key(&net, |&(n, _)| n) else {
                continue;
            };
            let m = nets[i].1;
            let new = match self.placement.loc_of(cell) {
                Some(loc) => loc,
                None => return NetBox::scan(self.nl, self.device, self.placement, net),
            };
            if !b.remove(old.proxy_coord(w, h), m) {
                // A bound's edge emptied; the placement already holds
                // every moved cell, so one rescan settles the box.
                return NetBox::scan(self.nl, self.device, self.placement, net);
            }
            b.add(new.proxy_coord(w, h), m);
        }
        b.recost();
        b
    }

    fn propose_target(
        &mut self,
        cell: CellId,
        kind: &CellKind,
        cur: BelLoc,
        window: u16,
    ) -> Option<BelLoc> {
        match kind {
            CellKind::Input | CellKind::Output => {
                // IOBs move along the perimeter freely.
                let sites: Vec<_> = self.device.iob_sites().collect();
                Some(BelLoc::Iob(sites[self.rng.gen_range(0..sites.len())]))
            }
            CellKind::Lut(_) | CellKind::Ff { .. } => {
                let c = cur.coord()?;
                let b = self.device.bounds();
                let win = Rect::new(
                    c.x.saturating_sub(window),
                    c.y.saturating_sub(window),
                    (c.x + window).min(b.x1),
                    (c.y + window).min(b.y1),
                );
                let region = match self.constraints.region_of(cell) {
                    None => clip(win, b)?,
                    Some(rects) => {
                        // Pick one of the region rectangles; prefer the
                        // window intersection when it exists.
                        let r = rects[self.rng.gen_range(0..rects.len())];
                        clip(r, win).or_else(|| clip(r, b))?
                    }
                };
                let x = self.rng.gen_range(region.x0..=region.x1);
                let y = self.rng.gen_range(region.y0..=region.y1);
                let slots = slots_for(kind);
                let slot = slots[self.rng.gen_range(0..slots.len())];
                Some(BelLoc::clb(x, y, slot))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{net_bbox_cost, total_wirelength_cost};
    use netlist::TruthTable;

    /// Two clusters of tightly connected LUTs.
    fn clustered_design() -> Netlist {
        let mut nl = Netlist::new("clusters");
        for g in 0..2 {
            let a = nl.add_input(format!("a{g}")).unwrap();
            let mut prev = nl.cell_output(a).unwrap();
            for i in 0..10 {
                let u = nl
                    .add_lut(format!("g{g}_u{i}"), TruthTable::not(), &[prev])
                    .unwrap();
                prev = nl.cell_output(u).unwrap();
            }
            nl.add_output(format!("y{g}"), prev).unwrap();
        }
        nl
    }

    #[test]
    fn annealing_reduces_cost() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        // Random initial placement cost:
        let mut init = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &Constraints::free(), &mut init, 77).unwrap();
        let init_cost = total_wirelength_cost(&nl, &dev, &init);
        let out = place(
            &nl,
            &dev,
            &Constraints::free(),
            Some(init),
            &PlacerConfig::default(),
        )
        .unwrap();
        assert!(out.cost < init_cost, "{} !< {init_cost}", out.cost);
        assert!(out.moves_evaluated > 0);
        // Cache consistency: recomputed cost matches incremental cost.
        let recomputed = total_wirelength_cost(&nl, &dev, &out.placement);
        assert!((recomputed - out.cost).abs() < 1e-6);
    }

    /// The incremental bounding-box cache must agree with the full
    /// per-net scan after any accepted/rejected move mix — driven
    /// through several real annealing runs with different shapes
    /// (swaps, empty-edge rescans, high-fanout q-factor changes).
    #[test]
    fn bbox_cache_matches_scan_recompute() {
        // A design with a high-fanout net and a cell that sinks the
        // same net twice (multiplicity > 1 matters for edge counts).
        let mut nl = Netlist::new("fanout");
        let a = nl.add_input("a").unwrap();
        let anet = nl.cell_output(a).unwrap();
        let mut last = anet;
        for i in 0..12 {
            let u = nl
                .add_lut(format!("u{i}"), TruthTable::and(2), &[anet, last])
                .unwrap();
            last = nl.cell_output(u).unwrap();
        }
        let d = nl
            .add_lut("dbl", TruthTable::and(2), &[anet, anet])
            .unwrap();
        nl.add_output("yd", nl.cell_output(d).unwrap()).unwrap();
        nl.add_output("y", last).unwrap();

        let dev = Device::new(6, 6, 4, 2).unwrap();
        for seed in [3, 17, 99] {
            let out = place(
                &nl,
                &dev,
                &Constraints::free(),
                None,
                &PlacerConfig::fast(seed),
            )
            .unwrap();
            let mut total = 0.0;
            for (id, _) in nl.nets() {
                let scanned = NetBox::scan(&nl, &dev, &out.placement, id);
                let cached = net_bbox_cost(&nl, &dev, &out.placement, id);
                assert!(
                    (scanned.cost - cached).abs() < 1e-9,
                    "net {id}: box scan {} != direct scan {cached}",
                    scanned.cost
                );
                total += cached;
            }
            assert!(
                (total - out.cost).abs() < 1e-6,
                "seed {seed}: cached total {} != scanned {total}",
                out.cost
            );
        }
    }

    #[test]
    fn locked_cells_do_not_move() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut init = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &Constraints::free(), &mut init, 5).unwrap();
        let locked_cell = nl.find_cell("g0_u0").unwrap();
        let pinned = init.loc_of(locked_cell).unwrap();
        let mut cons = Constraints::free();
        cons.lock(locked_cell);
        let out = place(&nl, &dev, &cons, Some(init), &PlacerConfig::fast(5)).unwrap();
        assert_eq!(out.placement.loc_of(locked_cell), Some(pinned));
    }

    #[test]
    fn regions_are_respected_through_annealing() {
        let nl = clustered_design();
        let dev = Device::new(10, 10, 4, 2).unwrap();
        let region = Rect::new(0, 0, 3, 3);
        let mut cons = Constraints::free();
        let confined: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| c.is_logic())
            .map(|(id, _)| id)
            .collect();
        for &id in &confined {
            cons.confine(id, region);
        }
        let out = place(&nl, &dev, &cons, None, &PlacerConfig::fast(11)).unwrap();
        for &id in &confined {
            let loc = out.placement.loc_of(id).unwrap();
            assert!(
                region.contains(loc.coord().unwrap()),
                "{id} escaped to {loc}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let run = || {
            let out = place(
                &nl,
                &dev,
                &Constraints::free(),
                None,
                &PlacerConfig::fast(42),
            )
            .unwrap();
            let locs: Vec<_> = out.placement.iter().collect();
            (locs, out.cost.to_bits(), out.moves_evaluated)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn effort_scales_with_movable_count() {
        let dev = Device::new(12, 12, 4, 2).unwrap();
        let small = {
            let mut nl = Netlist::new("s");
            let a = nl.add_input("a").unwrap();
            let mut prev = nl.cell_output(a).unwrap();
            for i in 0..4 {
                let u = nl
                    .add_lut(format!("u{i}"), TruthTable::not(), &[prev])
                    .unwrap();
                prev = nl.cell_output(u).unwrap();
            }
            nl.add_output("y", prev).unwrap();
            nl
        };
        let big = clustered_design();
        let cfg = PlacerConfig {
            max_temps: 10,
            ..PlacerConfig::default()
        };
        let e_small = place(&small, &dev, &Constraints::free(), None, &cfg)
            .unwrap()
            .moves_evaluated;
        let e_big = place(&big, &dev, &Constraints::free(), None, &cfg)
            .unwrap()
            .moves_evaluated;
        assert!(e_big > e_small);
    }

    #[test]
    fn fully_locked_design_returns_immediately() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut init = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &Constraints::free(), &mut init, 5).unwrap();
        let mut cons = Constraints::free();
        cons.lock_all(nl.cells().map(|(id, _)| id));
        let out = place(&nl, &dev, &cons, Some(init), &PlacerConfig::default()).unwrap();
        assert_eq!(out.moves_evaluated, 0);
        assert_eq!(out.temperatures, 0);
    }

    #[test]
    fn no_space_is_reported() {
        let nl = clustered_design(); // 20 LUTs
        let dev = Device::new(2, 2, 4, 2).unwrap(); // 8 LUT slots
        let err = place(
            &nl,
            &dev,
            &Constraints::free(),
            None,
            &PlacerConfig::fast(1),
        );
        assert!(matches!(err, Err(PlaceError::NoSpace(_))));
    }
}

//! Quadratic-wirelength analytical placement.
//!
//! The classical global-placement relaxation: model each net as
//! springs between its terminals (a *clique* of pairwise springs for
//! small nets, a *star* through an auxiliary center variable for large
//! ones), fix the pads and locked cells as anchors, and minimize the
//! total quadratic wirelength. The minimum of the resulting
//! positive-definite system is found with a hand-rolled conjugate
//! gradient — no external solver dependencies, deterministic f64
//! arithmetic, and the iteration count doubles as the effort metric
//! (`place_cg_iterations_total`).
//!
//! The solution is continuous and overlapping; `crate::legalize` snaps
//! it onto real BELs and the low-temperature polish in
//! `crate::placer` repairs what the snapping broke.

use std::collections::HashMap;

use fpga::{Device, Placement};
use netlist::{CellId, Netlist};

use crate::config::Constraints;
use crate::initial::clip;

/// Nets up to this many distinct placed terminals get the exact
/// clique decomposition; larger nets get the linear-size star.
const CLIQUE_MAX: usize = 3;

/// Weight pulling a region-confined movable cell toward its region
/// center (legalization enforces the hard constraint; the spring only
/// keeps the relaxation from drifting the cell far from its region).
const REGION_ANCHOR_W: f64 = 0.25;

/// Self-anchor toward the device center: guarantees strict diagonal
/// dominance (positive definiteness) even for floating components.
const EPS_ANCHOR_W: f64 = 1e-4;

/// The solved continuous positions of the movable cells.
pub(crate) struct QuadraticSolution {
    /// cell → (x, y), in device coordinates (unclamped).
    pub positions: HashMap<CellId, (f64, f64)>,
    /// Conjugate-gradient iterations spent (both axes).
    pub cg_iterations: u64,
}

/// Builds and solves the clique/star quadratic system for the movable
/// cells, with every placed non-movable cell folded in as a fixed
/// anchor at its proxy coordinate.
///
/// `movable` must be the cells to solve for (logic cells; IOBs are
/// anchors). Cells outside `movable` that appear on shared nets are
/// read from `placement` — unplaced ones are simply skipped.
pub(crate) fn solve_quadratic(
    nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    placement: &Placement,
    movable: &[CellId],
) -> QuadraticSolution {
    let n_mov = movable.len();
    let var_of: HashMap<CellId, usize> = movable.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let (w, h) = (device.width(), device.height());
    let center = (
        f64::from(w.saturating_sub(1)) / 2.0,
        f64::from(h.saturating_sub(1)) / 2.0,
    );
    let fixed_pos = |cell: CellId| -> Option<(f64, f64)> {
        let loc = placement.loc_of(cell)?;
        let c = loc.proxy_coord(w, h);
        Some((f64::from(c.x), f64::from(c.y)))
    };

    // Assemble triplets. Star centers get variables after the movable
    // block, discovered on the fly.
    let mut builder = SystemBuilder::new(n_mov);
    for (net, n) in nl.nets() {
        let _ = net;
        // Distinct terminal cells, split movable / fixed-placed.
        let mut terms: Vec<CellId> = Vec::with_capacity(n.sinks.len() + 1);
        if let Some(d) = n.driver {
            terms.push(d);
        }
        terms.extend(n.sinks.iter().map(|s| s.cell));
        terms.sort_unstable();
        terms.dedup();
        let mut vars: Vec<usize> = Vec::new();
        let mut anchors: Vec<(f64, f64)> = Vec::new();
        for &t in &terms {
            match var_of.get(&t) {
                Some(&v) => vars.push(v),
                None => {
                    if let Some(p) = fixed_pos(t) {
                        anchors.push(p);
                    }
                }
            }
        }
        if vars.is_empty() {
            continue;
        }
        let t = vars.len() + anchors.len();
        if t < 2 {
            continue;
        }
        let w_net = 2.0 / t as f64;
        if t <= CLIQUE_MAX {
            // Clique: a spring between every terminal pair.
            for i in 0..vars.len() {
                for j in (i + 1)..vars.len() {
                    builder.spring(vars[i], vars[j], w_net);
                }
                for a in &anchors {
                    builder.anchor(vars[i], *a, w_net);
                }
            }
        } else {
            // Star: one auxiliary center variable per large net.
            let c = builder.new_center();
            for &v in &vars {
                builder.spring(v, c, w_net);
            }
            for a in &anchors {
                builder.anchor(c, *a, w_net);
            }
        }
    }

    // Region springs and the ε self-anchor.
    for (i, &cell) in movable.iter().enumerate() {
        let target = constraints.region_of(cell).and_then(|rects| {
            let mut acc = (0.0f64, 0.0f64, 0usize);
            for r in rects.iter().filter_map(|&r| clip(r, device.bounds())) {
                acc.0 += (f64::from(r.x0) + f64::from(r.x1)) / 2.0;
                acc.1 += (f64::from(r.y0) + f64::from(r.y1)) / 2.0;
                acc.2 += 1;
            }
            (acc.2 > 0).then(|| (acc.0 / acc.2 as f64, acc.1 / acc.2 as f64))
        });
        if let Some(t) = target {
            builder.anchor(i, t, REGION_ANCHOR_W);
        }
        builder.anchor(i, center, EPS_ANCHOR_W);
    }
    for c in n_mov..builder.dim() {
        builder.anchor(c, center, EPS_ANCHOR_W);
    }

    let (matrix, rhs_x, rhs_y) = builder.finish();
    let mut x = vec![center.0; matrix.dim];
    let mut y = vec![center.1; matrix.dim];
    let mut iters = 0u64;
    iters += conjugate_gradient(&matrix, &rhs_x, &mut x);
    iters += conjugate_gradient(&matrix, &rhs_y, &mut y);

    let positions = movable
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, (x[i], y[i])))
        .collect();
    QuadraticSolution {
        positions,
        cg_iterations: iters,
    }
}

/// Sparse symmetric system accumulator (Laplacian + anchor diagonal).
struct SystemBuilder {
    dim: usize,
    /// Off-diagonal triplets (i, j, w) with i < j; `-w` enters the
    /// matrix at (i,j) and (j,i).
    springs: Vec<(usize, usize, f64)>,
    diag: Vec<f64>,
    rhs_x: Vec<f64>,
    rhs_y: Vec<f64>,
}

impl SystemBuilder {
    fn new(n: usize) -> Self {
        Self {
            dim: n,
            springs: Vec::new(),
            diag: vec![0.0; n],
            rhs_x: vec![0.0; n],
            rhs_y: vec![0.0; n],
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn new_center(&mut self) -> usize {
        self.dim += 1;
        self.diag.push(0.0);
        self.rhs_x.push(0.0);
        self.rhs_y.push(0.0);
        self.dim - 1
    }

    /// A spring of weight `w` between two variables.
    fn spring(&mut self, i: usize, j: usize, w: f64) {
        debug_assert_ne!(i, j);
        self.diag[i] += w;
        self.diag[j] += w;
        self.springs.push((i.min(j), i.max(j), w));
    }

    /// A spring of weight `w` from variable `i` to a fixed point.
    fn anchor(&mut self, i: usize, at: (f64, f64), w: f64) {
        self.diag[i] += w;
        self.rhs_x[i] += w * at.0;
        self.rhs_y[i] += w * at.1;
    }

    /// Collapses the triplets into CSR form (duplicate springs between
    /// the same pair merge into one entry).
    fn finish(self) -> (SparseMatrix, Vec<f64>, Vec<f64>) {
        // Symmetrize: store both (i,j) and (j,i) entries.
        let mut entries: Vec<(usize, usize, f64)> = Vec::with_capacity(self.springs.len() * 2);
        for &(i, j, w) in &self.springs {
            entries.push((i, j, -w));
            entries.push((j, i, -w));
        }
        entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_ptr = vec![0usize; self.dim + 1];
        let mut cols: Vec<usize> = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        let mut last: Option<(usize, usize)> = None;
        for (i, j, w) in entries {
            if last == Some((i, j)) {
                *vals.last_mut().unwrap() += w;
            } else {
                cols.push(j);
                vals.push(w);
                row_ptr[i + 1] += 1;
                last = Some((i, j));
            }
        }
        for i in 0..self.dim {
            row_ptr[i + 1] += row_ptr[i];
        }
        (
            SparseMatrix {
                dim: self.dim,
                row_ptr,
                cols,
                vals,
                diag: self.diag,
            },
            self.rhs_x,
            self.rhs_y,
        )
    }
}

/// CSR off-diagonal + dense diagonal.
struct SparseMatrix {
    dim: usize,
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    diag: Vec<f64>,
}

impl SparseMatrix {
    fn mul(&self, v: &[f64], out: &mut [f64]) {
        for i in 0..self.dim {
            let mut acc = self.diag[i] * v[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[k] * v[self.cols[k]];
            }
            out[i] = acc;
        }
    }
}

/// Relative-residual tolerance for the CG solve: the solution feeds a
/// discrete legalizer, so sub-cell accuracy is wasted work.
const CG_TOL: f64 = 1e-6;
const CG_MAX_ITERS: usize = 300;

/// Standard conjugate gradient on the SPD system `A·x = b`, warm-
/// started from `x`. Returns the iteration count.
fn conjugate_gradient(a: &SparseMatrix, b: &[f64], x: &mut [f64]) -> u64 {
    let n = a.dim;
    if n == 0 {
        return 0;
    }
    let mut r = vec![0.0; n];
    let mut ap = vec![0.0; n];
    a.mul(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut p = r.clone();
    let mut rr: f64 = r.iter().map(|v| v * v).sum();
    let b_norm: f64 = b.iter().map(|v| v * v).sum::<f64>().max(1e-30);
    let mut iters = 0u64;
    for _ in 0..CG_MAX_ITERS.min(4 * n + 8) {
        if rr <= CG_TOL * CG_TOL * b_norm {
            break;
        }
        iters += 1;
        a.mul(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(pi, api)| pi * api).sum();
        if pap <= 0.0 {
            break;
        }
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    iters
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga::BelLoc;
    use netlist::TruthTable;

    #[test]
    fn cg_solves_a_small_spd_system() {
        // Two variables coupled by a spring, each anchored at a
        // different point: the solution sits between the anchors.
        let mut b = SystemBuilder::new(2);
        b.spring(0, 1, 1.0);
        b.anchor(0, (0.0, 0.0), 2.0);
        b.anchor(1, (6.0, 3.0), 2.0);
        let (m, rhs_x, rhs_y) = b.finish();
        let mut x = vec![0.0; 2];
        let mut y = vec![0.0; 2];
        let it = conjugate_gradient(&m, &rhs_x, &mut x) + conjugate_gradient(&m, &rhs_y, &mut y);
        assert!(it > 0);
        // Exact solution of [[3,-1],[-1,3]]·x = [0,12]: x = [1.5, 4.5].
        assert!((x[0] - 1.5).abs() < 1e-4, "{x:?}");
        assert!((x[1] - 4.5).abs() < 1e-4, "{x:?}");
        assert!(x[0] < x[1]);
        assert!(y[0] < y[1]);
    }

    #[test]
    fn movable_cell_lands_between_its_fixed_neighbors() {
        // pad(0,3) → u → pad(7,4): the solved position is interior.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let u = nl
            .add_lut("u", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        let y = nl.find_cell("y").unwrap();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut p = Placement::new(nl.cell_capacity());
        let mut sites = dev.iob_sites();
        p.place(a, BelLoc::Iob(sites.next().unwrap())).unwrap();
        p.place(y, BelLoc::Iob(sites.last().unwrap())).unwrap();
        let sol = solve_quadratic(&nl, &dev, &Constraints::free(), &p, &[u]);
        let (ax, ay) = {
            let c = p.loc_of(a).unwrap().proxy_coord(8, 8);
            (f64::from(c.x), f64::from(c.y))
        };
        let (yx, yy) = {
            let c = p.loc_of(y).unwrap().proxy_coord(8, 8);
            (f64::from(c.x), f64::from(c.y))
        };
        let (ux, uy) = sol.positions[&u];
        assert!(sol.cg_iterations > 0);
        // 1e-3 slack: the ε self-anchor tugs the solution toward the
        // device center by O(EPS_ANCHOR_W).
        assert!(ux >= ax.min(yx) - 1e-3 && ux <= ax.max(yx) + 1e-3, "{ux}");
        assert!(uy >= ay.min(yy) - 1e-3 && uy <= ay.max(yy) + 1e-3, "{uy}");
    }

    #[test]
    fn region_spring_pulls_confined_cells_toward_their_region() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a").unwrap();
        let u = nl
            .add_lut("u", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        let v = nl
            .add_lut("v", TruthTable::not(), &[nl.cell_output(u).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(v).unwrap()).unwrap();
        let dev = Device::new(10, 10, 4, 2).unwrap();
        let p = Placement::new(nl.cell_capacity());
        // No placed anchors at all: only the region spring acts.
        let mut cons = Constraints::free();
        cons.confine(u, fpga::Rect::new(8, 8, 9, 9));
        let sol = solve_quadratic(&nl, &dev, &cons, &p, &[u, v]);
        let (ux, uy) = sol.positions[&u];
        assert!(ux > 6.0 && uy > 6.0, "({ux},{uy}) not pulled to region");
    }
}

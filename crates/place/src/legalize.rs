//! Tetris legalization: snap continuous analytical positions onto
//! free, compatible, region-respecting BELs.
//!
//! Cells are processed in deterministic solved-position order (left to
//! right, then top to bottom — the classical tetris sweep) and each
//! takes the nearest free compatible slot to its continuous target,
//! searched over growing Chebyshev rings so displacement stays small
//! where density allows. Region constraints are *hard* here: a
//! confined cell only ever considers slots inside its clipped region
//! rectangles, which is what keeps the ECO flow's tile confinement
//! invariant intact through the analytical engine.

use fpga::{BelLoc, Coord, Device, Placement, Rect};
use netlist::{CellId, CellKind, Netlist};

use crate::config::Constraints;
use crate::initial::{clip, slots_for};
use crate::sa::PlaceError;

/// Added to a candidate CLB's squared distance per already-occupied
/// slot. Below 1.0 (one grid unit²) so it only decides near-ties.
const SPREAD_PENALTY: f64 = 0.75;

/// Places every cell of `cells` (currently unplaced) at the free
/// compatible slot nearest its solved `(x, y)` target.
///
/// # Errors
///
/// Returns [`PlaceError::NoSpace`] when a cell's region has no free
/// compatible slot left.
pub(crate) fn legalize(
    nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    placement: &mut Placement,
    targets: &[(CellId, f64, f64)],
) -> Result<(), PlaceError> {
    // Tetris order: sweep by solved x, then y, then id for stability.
    let mut order: Vec<usize> = (0..targets.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        let (ca, xa, ya) = targets[a];
        let (cb, xb, yb) = targets[b];
        xa.total_cmp(&xb).then(ya.total_cmp(&yb)).then(ca.cmp(&cb))
    });
    for &i in &order {
        let (cell, x, y) = targets[i];
        let kind = &nl.cell(cell).map_err(PlaceError::Netlist)?.kind;
        let loc = nearest_free(nl, device, constraints, placement, cell, kind, x, y)?;
        placement
            .place(cell, loc)
            .map_err(|_| PlaceError::NoSpace(cell))?;
    }
    Ok(())
}

/// The free compatible slot nearest to `(x, y)` for `cell`, honoring
/// its region rectangles. Deterministic: ties break on (coord, slot).
#[allow(clippy::too_many_arguments)]
fn nearest_free(
    _nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    placement: &Placement,
    cell: CellId,
    kind: &CellKind,
    x: f64,
    y: f64,
) -> Result<BelLoc, PlaceError> {
    match kind {
        CellKind::Input | CellKind::Output => {
            // Pads: nearest free perimeter site by proxy distance.
            let (w, h) = (device.width(), device.height());
            device
                .iob_sites()
                .map(BelLoc::Iob)
                .filter(|&l| placement.is_free(l))
                .min_by(|&a, &b| {
                    let da = dist2(a.proxy_coord(w, h), x, y);
                    let db = dist2(b.proxy_coord(w, h), x, y);
                    da.total_cmp(&db).then(a.cmp(&b))
                })
                .ok_or(PlaceError::NoSpace(cell))
        }
        CellKind::Lut(_) | CellKind::Ff { .. } => {
            let whole = [device.bounds()];
            let raw: &[Rect] = constraints.region_of(cell).unwrap_or(&whole);
            let rects: Vec<Rect> = raw
                .iter()
                .filter_map(|&r| clip(r, device.bounds()))
                .collect();
            if rects.is_empty() {
                return Err(PlaceError::NoSpace(cell));
            }
            let slots = slots_for(kind);
            // Seed the ring search from the in-region point nearest
            // the continuous target.
            let seed = nearest_point_in(&rects, x, y);
            let max_r = device.width().max(device.height());
            for r in 0..=max_r {
                let mut best: Option<(f64, Coord, u8)> = None;
                for c in chebyshev_ring(seed, r, device.bounds()) {
                    if !rects.iter().any(|rc| rc.contains(c)) {
                        continue;
                    }
                    // Congestion-aware spreading: bias toward emptier
                    // CLBs so the quadratic solution's piles don't all
                    // stack their pin demand on the same tile. The
                    // penalty is sub-cell, so it only breaks near-ties
                    // — a genuinely closer CLB still wins.
                    let occupied = fpga::ClbSlot::ALL
                        .iter()
                        .filter(|&&s| !placement.is_free(BelLoc::Clb { coord: c, slot: s }))
                        .count();
                    for (si, &slot) in slots.iter().enumerate() {
                        let loc = BelLoc::Clb { coord: c, slot };
                        if !placement.is_free(loc) {
                            continue;
                        }
                        let d = dist2(c, x, y) + SPREAD_PENALTY * occupied as f64;
                        let key = (d, c, si as u8);
                        let better = match &best {
                            None => true,
                            Some((bd, bc, bs)) => {
                                key.0.total_cmp(bd).then((key.1, key.2).cmp(&(*bc, *bs)))
                                    == std::cmp::Ordering::Less
                            }
                        };
                        if better {
                            best = Some(key);
                        }
                    }
                }
                if let Some((_, c, si)) = best {
                    return Ok(BelLoc::Clb {
                        coord: c,
                        slot: slots[si as usize],
                    });
                }
            }
            // Rings exhausted around the seed; the region may be
            // disjoint from the seed's neighborhood. Exhaustive sweep.
            for rc in &rects {
                for c in rc.iter() {
                    for &slot in slots {
                        let loc = BelLoc::Clb { coord: c, slot };
                        if placement.is_free(loc) {
                            return Ok(loc);
                        }
                    }
                }
            }
            Err(PlaceError::NoSpace(cell))
        }
    }
}

fn dist2(c: Coord, x: f64, y: f64) -> f64 {
    let dx = f64::from(c.x) - x;
    let dy = f64::from(c.y) - y;
    dx * dx + dy * dy
}

/// The in-bounds point of the rect union closest to `(x, y)`.
fn nearest_point_in(rects: &[Rect], x: f64, y: f64) -> Coord {
    let clamp = |v: f64, lo: u16, hi: u16| -> u16 {
        let r = v.round();
        if r <= f64::from(lo) {
            lo
        } else if r >= f64::from(hi) {
            hi
        } else {
            r as u16
        }
    };
    rects
        .iter()
        .map(|r| Coord {
            x: clamp(x, r.x0, r.x1),
            y: clamp(y, r.y0, r.y1),
        })
        .min_by(|&a, &b| dist2(a, x, y).total_cmp(&dist2(b, x, y)).then(a.cmp(&b)))
        .unwrap_or(Coord { x: 0, y: 0 })
}

/// The coordinates at Chebyshev distance exactly `r` from `center`,
/// clipped to `bounds`, in deterministic scan order.
fn chebyshev_ring(center: Coord, r: u16, bounds: Rect) -> Vec<Coord> {
    let mut out = Vec::new();
    let x0 = center.x.saturating_sub(r).max(bounds.x0);
    let x1 = (center.x + r).min(bounds.x1);
    let y0 = center.y.saturating_sub(r).max(bounds.y0);
    let y1 = (center.y + r).min(bounds.y1);
    for y in y0..=y1 {
        for x in x0..=x1 {
            let d = (x.abs_diff(center.x)).max(y.abs_diff(center.y));
            if d == r {
                out.push(Coord { x, y });
            }
        }
    }
    out
}

/// Companion check used by the analytical placer's debug assertions.
#[cfg(debug_assertions)]
pub(crate) fn respects_regions(
    constraints: &Constraints,
    placement: &Placement,
    cells: &[CellId],
) -> bool {
    cells.iter().all(|&c| match constraints.region_of(c) {
        None => true,
        Some(rects) => match placement.loc_of(c).and_then(|l| l.coord()) {
            // IOB placements carry no CLB coordinate; regions only
            // constrain CLB cells.
            None => true,
            Some(coord) => rects.iter().any(|r| r.contains(coord)),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::TruthTable;

    #[test]
    fn snaps_to_nearest_free_slot_and_respects_regions() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let mut prev = nl.cell_output(a).unwrap();
        let mut luts = Vec::new();
        for i in 0..4 {
            let u = nl
                .add_lut(format!("u{i}"), TruthTable::not(), &[prev])
                .unwrap();
            prev = nl.cell_output(u).unwrap();
            luts.push(u);
        }
        nl.add_output("y", prev).unwrap();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut cons = Constraints::free();
        let region = Rect::new(4, 4, 5, 5);
        for &u in &luts {
            cons.confine(u, region);
        }
        let mut p = Placement::new(nl.cell_capacity());
        // All four target the same out-of-region point: they must
        // pack into the region anyway, distinct slots each.
        let targets: Vec<(CellId, f64, f64)> = luts.iter().map(|&u| (u, 0.0, 0.0)).collect();
        legalize(&nl, &dev, &cons, &mut p, &targets).unwrap();
        for &u in &luts {
            let loc = p.loc_of(u).unwrap();
            assert!(region.contains(loc.coord().unwrap()), "{u} at {loc}");
        }
        // 4 LUTs into 2 LUT slots per CLB: exactly two CLBs used.
        let mut coords: Vec<Coord> = luts
            .iter()
            .map(|&u| p.loc_of(u).unwrap().coord().unwrap())
            .collect();
        coords.sort_unstable();
        coords.dedup();
        assert_eq!(coords.len(), 2);
    }

    #[test]
    fn exact_target_slot_wins_when_free() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let u = nl
            .add_lut("u", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut p = Placement::new(nl.cell_capacity());
        legalize(&nl, &dev, &Constraints::free(), &mut p, &[(u, 3.0, 6.0)]).unwrap();
        assert_eq!(p.loc_of(u).unwrap().coord().unwrap(), Coord { x: 3, y: 6 });
    }

    #[test]
    fn overfull_region_reports_no_space() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let mut prev = nl.cell_output(a).unwrap();
        let mut luts = Vec::new();
        for i in 0..3 {
            let u = nl
                .add_lut(format!("u{i}"), TruthTable::not(), &[prev])
                .unwrap();
            prev = nl.cell_output(u).unwrap();
            luts.push(u);
        }
        nl.add_output("y", prev).unwrap();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut cons = Constraints::free();
        for &u in &luts {
            cons.confine(u, Rect::new(0, 0, 0, 0)); // one CLB: 2 slots
        }
        let mut p = Placement::new(nl.cell_capacity());
        let targets: Vec<_> = luts.iter().map(|&u| (u, 0.0, 0.0)).collect();
        let err = legalize(&nl, &dev, &cons, &mut p, &targets);
        assert!(matches!(err, Err(PlaceError::NoSpace(_))));
    }
}

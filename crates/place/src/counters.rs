//! Process-global placer effort counters.
//!
//! Same pattern as `sim`'s counters: relaxed atomics that only ever
//! add, scraped at scope boundaries via [`snapshot`] +
//! [`PlaceCounters::delta_since`]. Deltas are order-independent, so a
//! work-stealing fleet aggregating per-request deltas produces the
//! same totals as a serial run — which is what keeps the exported
//! `place_*_total` metric families byte-identical serial vs fleet.

use std::sync::atomic::{AtomicU64, Ordering};

static MOVES_ANNEALING: AtomicU64 = AtomicU64::new(0);
static MOVES_ANALYTICAL: AtomicU64 = AtomicU64::new(0);
static CG_ITERATIONS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the placer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaceCounters {
    /// Moves evaluated by [`crate::run_placer`] runs with the
    /// annealing engine.
    pub moves_annealing: u64,
    /// Moves evaluated by analytical-engine runs (the polish phase
    /// plus the folded-in conjugate-gradient iterations).
    pub moves_analytical: u64,
    /// Conjugate-gradient iterations across analytical solves.
    pub cg_iterations: u64,
}

impl PlaceCounters {
    /// Counter increments since `before` (saturating, like the sim
    /// counters, so a stale snapshot cannot underflow).
    pub fn delta_since(&self, before: &Self) -> Self {
        Self {
            moves_annealing: self.moves_annealing.saturating_sub(before.moves_annealing),
            moves_analytical: self
                .moves_analytical
                .saturating_sub(before.moves_analytical),
            cg_iterations: self.cg_iterations.saturating_sub(before.cg_iterations),
        }
    }
}

/// Reads the current totals.
pub fn snapshot() -> PlaceCounters {
    PlaceCounters {
        moves_annealing: MOVES_ANNEALING.load(Ordering::Relaxed),
        moves_analytical: MOVES_ANALYTICAL.load(Ordering::Relaxed),
        cg_iterations: CG_ITERATIONS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_annealing_moves(n: u64) {
    MOVES_ANNEALING.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_analytical_moves(n: u64) {
    MOVES_ANALYTICAL.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_cg_iterations(n: u64) {
    CG_ITERATIONS.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate_and_saturate() {
        let before = snapshot();
        record_annealing_moves(5);
        record_analytical_moves(7);
        record_cg_iterations(3);
        let d = snapshot().delta_since(&before);
        assert!(d.moves_annealing >= 5);
        assert!(d.moves_analytical >= 7);
        assert!(d.cg_iterations >= 3);
        // A snapshot from the future saturates to zero.
        let future = PlaceCounters {
            moves_annealing: u64::MAX,
            moves_analytical: u64::MAX,
            cg_iterations: u64::MAX,
        };
        assert_eq!(snapshot().delta_since(&future), PlaceCounters::default());
    }
}

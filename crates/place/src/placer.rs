//! The [`Placer`] trait and its two engines.
//!
//! The tiling flows never call an engine directly: they go through
//! [`run_placer`], which dispatches on [`PlacerConfig::engine`] and
//! records the effort counters every bench and metrics artifact
//! scrapes. [`AnnealingPlacer`] is the original VPR-style engine;
//! [`AnalyticalPlacer`] is the quadratic solve → tetris legalization →
//! low-temperature polish pipeline that reaches equal-or-better HPWL
//! at a fraction of the moves.

use fpga::{Device, Placement};
use netlist::{CellId, CellKind, Netlist};

use crate::analytical::solve_quadratic;
use crate::config::{Constraints, PlaceEngine, PlacerConfig};
use crate::counters;
use crate::initial::initial_place;
use crate::legalize::legalize;
use crate::sa::{self, PlaceError, PlaceOutcome, Schedule};

/// A placement engine: same contract as [`crate::place`].
pub trait Placer {
    /// Stable engine name (metrics label, bench column).
    fn name(&self) -> &'static str;

    /// Places `nl` on `device` under `constraints`, seeded by
    /// `initial` (locked cells must already be placed in it).
    ///
    /// # Errors
    ///
    /// [`PlaceError::NoSpace`] when a region cannot hold its cells,
    /// [`PlaceError::Netlist`] on graph inconsistencies.
    fn place(
        &self,
        nl: &Netlist,
        device: &Device,
        constraints: &Constraints,
        initial: Option<Placement>,
        config: &PlacerConfig,
    ) -> Result<PlaceOutcome, PlaceError>;
}

/// The original full simulated-annealing engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnnealingPlacer;

impl Placer for AnnealingPlacer {
    fn name(&self) -> &'static str {
        PlaceEngine::Annealing.label()
    }

    fn place(
        &self,
        nl: &Netlist,
        device: &Device,
        constraints: &Constraints,
        initial: Option<Placement>,
        config: &PlacerConfig,
    ) -> Result<PlaceOutcome, PlaceError> {
        sa::place(nl, device, constraints, initial, config)
    }
}

/// Quadratic-wirelength solve + tetris legalization + SA polish.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalPlacer;

impl Placer for AnalyticalPlacer {
    fn name(&self) -> &'static str {
        PlaceEngine::Analytical.label()
    }

    fn place(
        &self,
        nl: &Netlist,
        device: &Device,
        constraints: &Constraints,
        initial: Option<Placement>,
        config: &PlacerConfig,
    ) -> Result<PlaceOutcome, PlaceError> {
        let mut placement = initial.unwrap_or_else(|| Placement::new(nl.cell_capacity()));
        // Constructive fill first: pads get perimeter sites, logic a
        // (random but deterministic) fallback — and everything the
        // caller pre-placed or locked stays put.
        initial_place(nl, device, constraints, &mut placement, config.seed)?;

        let mut movable_logic: Vec<CellId> = Vec::new();
        let mut movable_io: Vec<CellId> = Vec::new();
        for (id, cell) in nl.cells() {
            if constraints.is_locked(id) {
                continue;
            }
            match cell.kind {
                CellKind::Lut(_) | CellKind::Ff { .. } => movable_logic.push(id),
                CellKind::Input | CellKind::Output => movable_io.push(id),
            }
        }
        if movable_logic.len() + movable_io.len() < 2 {
            // Nothing to optimize; mirror the annealer's fast path.
            return sa::place(nl, device, constraints, Some(placement), config);
        }

        let mut cg_iterations = 0u64;
        if !movable_logic.is_empty() {
            // Alternate solve ↔ pad reassignment: the constructive pad
            // sites are random, and a solve against them inherits that
            // randomness. Each reassignment pulls every movable pad to
            // the perimeter site nearest its solved neighborhood, which
            // contracts pad spread geometrically — a handful of rounds
            // settles the mutual logic/pad dependency. The final solve
            // (against the settled pads) is what gets legalized.
            const PAD_ROUNDS: usize = 4;
            let rounds = if movable_io.is_empty() { 0 } else { PAD_ROUNDS };
            let mut sol = solve_quadratic(nl, device, constraints, &placement, &movable_logic);
            cg_iterations += sol.cg_iterations;
            for _ in 0..rounds {
                assign_pads(nl, device, &mut placement, &movable_io, |c| {
                    sol.positions.get(&c).copied()
                })?;
                sol = solve_quadratic(nl, device, constraints, &placement, &movable_logic);
                cg_iterations += sol.cg_iterations;
            }
            for &c in &movable_logic {
                let _ = placement.unplace(c);
            }
            let targets: Vec<(CellId, f64, f64)> = movable_logic
                .iter()
                .map(|&c| {
                    let (x, y) = sol.positions[&c];
                    (c, x, y)
                })
                .collect();
            legalize(nl, device, constraints, &mut placement, &targets)?;
            #[cfg(debug_assertions)]
            debug_assert!(crate::legalize::respects_regions(
                constraints,
                &placement,
                &movable_logic
            ));
        }

        // Short low-temperature polish: repairs legalization damage
        // and settles the pads; never worse than its own start.
        let mut out = sa::anneal(
            nl,
            device,
            constraints,
            placement,
            config.seed,
            Schedule::polish(config, device),
        )?;
        // Fold the CG work into the paper-comparable effort metric so
        // engine comparisons stay honest.
        out.cg_iterations = cg_iterations;
        out.moves_evaluated += cg_iterations;
        Ok(out)
    }
}

/// Moves each movable pad to the free perimeter site nearest the
/// centroid of its nets' solved logic positions.
fn assign_pads(
    nl: &Netlist,
    device: &Device,
    placement: &mut Placement,
    pads: &[CellId],
    solved: impl Fn(CellId) -> Option<(f64, f64)>,
) -> Result<(), PlaceError> {
    let (w, h) = (device.width(), device.height());
    for &pad in pads {
        // Centroid of the solved positions on the pad's nets.
        let cell = nl.cell(pad).map_err(PlaceError::Netlist)?;
        let mut nets: Vec<netlist::NetId> = cell.inputs.clone();
        if let Some(o) = cell.output {
            nets.push(o);
        }
        let (mut sx, mut sy, mut k) = (0.0f64, 0.0f64, 0usize);
        for net in nets {
            let Ok(n) = nl.net(net) else { continue };
            let mut visit = |c: CellId| {
                if c == pad {
                    return;
                }
                if let Some((x, y)) = solved(c) {
                    sx += x;
                    sy += y;
                    k += 1;
                }
            };
            if let Some(d) = n.driver {
                visit(d);
            }
            for s in &n.sinks {
                visit(s.cell);
            }
        }
        if k == 0 {
            continue; // keep the constructive site
        }
        let (tx, ty) = (sx / k as f64, sy / k as f64);
        let _ = placement.unplace(pad);
        let best = device
            .iob_sites()
            .map(fpga::BelLoc::Iob)
            .filter(|&l| placement.is_free(l))
            .min_by(|&a, &b| {
                let pa = a.proxy_coord(w, h);
                let pb = b.proxy_coord(w, h);
                let da = (f64::from(pa.x) - tx).powi(2) + (f64::from(pa.y) - ty).powi(2);
                let db = (f64::from(pb.x) - tx).powi(2) + (f64::from(pb.y) - ty).powi(2);
                da.total_cmp(&db).then(a.cmp(&b))
            })
            .ok_or(PlaceError::NoSpace(pad))?;
        placement
            .place(pad, best)
            .map_err(|_| PlaceError::NoSpace(pad))?;
    }
    Ok(())
}

/// The engine for a config.
pub fn placer_for(engine: PlaceEngine) -> &'static dyn Placer {
    match engine {
        PlaceEngine::Annealing => &AnnealingPlacer,
        PlaceEngine::Analytical => &AnalyticalPlacer,
    }
}

/// Places through the engine selected by `config.engine` and records
/// the global effort counters. This is the entry point every tiling
/// flow uses.
///
/// # Errors
///
/// Same contract as [`crate::place`].
pub fn run_placer(
    nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    initial: Option<Placement>,
    config: &PlacerConfig,
) -> Result<PlaceOutcome, PlaceError> {
    let out = placer_for(config.engine).place(nl, device, constraints, initial, config)?;
    match config.engine {
        PlaceEngine::Annealing => counters::record_annealing_moves(out.moves_evaluated),
        PlaceEngine::Analytical => {
            counters::record_analytical_moves(out.moves_evaluated);
            counters::record_cg_iterations(out.cg_iterations);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::total_wirelength_cost;
    use fpga::Rect;
    use netlist::TruthTable;

    fn clustered_design() -> Netlist {
        let mut nl = Netlist::new("clusters");
        for g in 0..2 {
            let a = nl.add_input(format!("a{g}")).unwrap();
            let mut prev = nl.cell_output(a).unwrap();
            for i in 0..10 {
                let u = nl
                    .add_lut(format!("g{g}_u{i}"), TruthTable::not(), &[prev])
                    .unwrap();
                prev = nl.cell_output(u).unwrap();
            }
            nl.add_output(format!("y{g}"), prev).unwrap();
        }
        nl
    }

    #[test]
    fn analytical_matches_sa_quality_at_fraction_of_moves() {
        // Both engines are noisy on a design this small, so compare
        // aggregates over a few seeds rather than one lucky draw.
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let (mut sa_cost, mut an_cost) = (0.0f64, 0.0f64);
        let (mut sa_moves, mut an_moves) = (0u64, 0u64);
        for seed in [0, 2, 4] {
            let mk = |engine| {
                PlacerConfig {
                    seed,
                    ..PlacerConfig::default()
                }
                .with_engine(engine)
            };
            let sa_out = run_placer(
                &nl,
                &dev,
                &Constraints::free(),
                None,
                &mk(PlaceEngine::Annealing),
            )
            .unwrap();
            let an_out = run_placer(
                &nl,
                &dev,
                &Constraints::free(),
                None,
                &mk(PlaceEngine::Analytical),
            )
            .unwrap();
            assert!(an_out.cg_iterations > 0, "quadratic solve must run");
            // Everything placed, consistent cached cost.
            assert_eq!(an_out.placement.num_placed(), nl.num_cells());
            let recomputed = total_wirelength_cost(&nl, &dev, &an_out.placement);
            assert!((recomputed - an_out.cost).abs() < 1e-6);
            sa_cost += sa_out.cost;
            an_cost += an_out.cost;
            sa_moves += sa_out.moves_evaluated;
            an_moves += an_out.moves_evaluated;
        }
        assert!(
            an_moves * 2 <= sa_moves,
            "analytical {an_moves} moves !≪ SA {sa_moves}"
        );
        assert!(
            an_cost <= sa_cost * 1.05,
            "analytical HPWL {an_cost} worse than SA {sa_cost}"
        );
    }

    #[test]
    fn analytical_is_deterministic() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let run = || {
            let out = run_placer(
                &nl,
                &dev,
                &Constraints::free(),
                None,
                &PlacerConfig::fast(42),
            )
            .unwrap();
            let locs: Vec<_> = out.placement.iter().collect();
            (locs, out.cost.to_bits(), out.moves_evaluated)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn analytical_respects_locks_and_regions() {
        let nl = clustered_design();
        let dev = Device::new(10, 10, 4, 2).unwrap();
        let mut init = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &Constraints::free(), &mut init, 5).unwrap();
        let locked_cell = nl.find_cell("g0_u0").unwrap();
        let pinned = init.loc_of(locked_cell).unwrap();
        let region = Rect::new(0, 0, 4, 4);
        let mut cons = Constraints::free();
        cons.lock(locked_cell);
        let confined: Vec<CellId> = nl
            .cells()
            .filter(|(id, c)| c.is_logic() && *id != locked_cell)
            .map(|(id, _)| id)
            .collect();
        for &id in &confined {
            cons.confine(id, region);
        }
        let out = run_placer(&nl, &dev, &cons, Some(init), &PlacerConfig::fast(7)).unwrap();
        assert_eq!(out.placement.loc_of(locked_cell), Some(pinned));
        for &id in &confined {
            let loc = out.placement.loc_of(id).unwrap();
            assert!(
                region.contains(loc.coord().unwrap()),
                "{id} escaped to {loc}"
            );
        }
    }

    #[test]
    fn counters_track_engine_effort() {
        let nl = clustered_design();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let before = counters::snapshot();
        run_placer(
            &nl,
            &dev,
            &Constraints::free(),
            None,
            &PlacerConfig::fast(3),
        )
        .unwrap();
        run_placer(
            &nl,
            &dev,
            &Constraints::free(),
            None,
            &PlacerConfig::fast(3).with_engine(PlaceEngine::Annealing),
        )
        .unwrap();
        let d = counters::snapshot().delta_since(&before);
        assert!(d.moves_analytical > 0);
        assert!(d.cg_iterations > 0);
        assert!(d.moves_annealing > 0);
    }
}

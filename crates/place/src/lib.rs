//! Placement engines with region and lock constraints.
//!
//! Two engines sit behind the [`Placer`] trait, selected per call via
//! [`config::PlaceEngine`] and dispatched by [`run_placer`]:
//!
//! * **annealing** — the original VPR-style simulated annealer;
//! * **analytical** (default) — clique/star-decomposed quadratic
//!   wirelength solved by conjugate gradient, tetris legalization onto
//!   compatible BELs, then a short low-temperature anneal polish. Same
//!   final HPWL ballpark at a fraction of the moves.
//!
//! Both serve the tiling flow's two modes of operation:
//!
//! * **full placement** — every cell is movable anywhere on the device
//!   (paper step 2, and the full re-place-and-route baseline);
//! * **tile-confined placement** — most cells are *locked* at their
//!   existing locations and the movable rest carry a *region
//!   constraint* confining them to the cleared tile rectangles (paper
//!   steps 17–20). This is the mechanism by which "tiling is achieved
//!   through physical design constraints imposed on the place-and-route
//!   tool" (§3.2).
//!
//! Placement effort is metered in *moves evaluated*, the quantity
//! Figure 5's speedups are computed from (wall-clock on 1996 hardware
//! is not reproducible; the move count is, and is proportional). The
//! analytical engine folds its conjugate-gradient iterations into the
//! same meter so cross-engine comparisons stay honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytical;
pub mod config;
pub mod cost;
pub mod counters;
pub mod initial;
mod legalize;
mod placer;
pub mod sa;

pub use config::{Constraints, PlaceEngine, PlacerConfig};
pub use cost::{net_bbox_cost, total_wirelength_cost};
pub use initial::initial_place;
pub use placer::{run_placer, AnalyticalPlacer, AnnealingPlacer, Placer};
pub use sa::{place, PlaceError, PlaceOutcome};

//! Simulated-annealing placement with region and lock constraints.
//!
//! This is a VPR-style annealer specialized for the tiling flow's two
//! modes of operation:
//!
//! * **full placement** — every cell is movable anywhere on the device
//!   (paper step 2, and the full re-place-and-route baseline);
//! * **tile-confined placement** — most cells are *locked* at their
//!   existing locations and the movable rest carry a *region
//!   constraint* confining them to the cleared tile rectangles (paper
//!   steps 17–20). This is the mechanism by which "tiling is achieved
//!   through physical design constraints imposed on the place-and-route
//!   tool" (§3.2).
//!
//! Placement effort is metered in *moves evaluated*, the quantity
//! Figure 5's speedups are computed from (wall-clock on 1996 hardware
//! is not reproducible; the move count is, and is proportional).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod initial;
pub mod sa;

pub use config::{Constraints, PlacerConfig};
pub use cost::{net_bbox_cost, total_wirelength_cost};
pub use initial::initial_place;
pub use sa::{place, PlaceError, PlaceOutcome};

//! Placer configuration and physical constraints.

use std::collections::{HashMap, HashSet};

use fpga::Rect;
use netlist::CellId;

/// Which engine [`crate::run_placer`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaceEngine {
    /// Pure VPR-style simulated annealing (the original engine).
    Annealing,
    /// Clique/star quadratic-wirelength solve (conjugate gradient),
    /// tetris legalization, then a short low-temperature annealing
    /// polish whose budget is `polish_inner` / `polish_temps`.
    #[default]
    Analytical,
}

impl PlaceEngine {
    /// Stable label used in metrics and bench output.
    pub fn label(self) -> &'static str {
        match self {
            Self::Annealing => "annealing",
            Self::Analytical => "analytical",
        }
    }
}

/// Annealing schedule and effort parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// RNG seed; fixes the result exactly.
    pub seed: u64,
    /// Moves per temperature = `inner_num × movable^(4/3)`.
    pub inner_num: f64,
    /// Stop when `T < exit_ratio × cost / nets`.
    pub exit_ratio: f64,
    /// Fast mode for tests: caps total temperatures.
    pub max_temps: usize,
    /// Engine selection for [`crate::run_placer`]. [`crate::place`]
    /// itself is always the annealer; the analytical engine calls it
    /// for its polish phase.
    pub engine: PlaceEngine,
    /// Polish `inner_num` for the analytical engine (a fraction of
    /// the full schedule's — the quadratic solve already did the
    /// global work, the polish only repairs legalization damage).
    pub polish_inner: f64,
    /// Polish temperature cap for the analytical engine.
    pub polish_temps: usize,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            inner_num: 1.0,
            exit_ratio: 0.005,
            max_temps: 200,
            engine: PlaceEngine::default(),
            polish_inner: 0.75,
            polish_temps: 80,
        }
    }
}

impl PlacerConfig {
    /// A light schedule for unit tests and small ECO regions.
    pub fn fast(seed: u64) -> Self {
        Self {
            seed,
            inner_num: 0.5,
            exit_ratio: 0.02,
            max_temps: 60,
            polish_inner: 0.35,
            polish_temps: 30,
            ..Self::default()
        }
    }

    /// The same schedule driven by the other engine — used by the
    /// flow bench to price both engines on identical budgets.
    pub fn with_engine(mut self, engine: PlaceEngine) -> Self {
        self.engine = engine;
        self
    }
}

/// Placement constraints: locked cells and per-cell region boxes.
///
/// ```
/// use place::Constraints;
/// use fpga::Rect;
/// use netlist::CellId;
///
/// let mut c = Constraints::default();
/// c.lock(CellId::new(3));
/// c.confine(CellId::new(4), Rect::new(0, 0, 3, 3));
/// assert!(c.is_locked(CellId::new(3)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    locked: HashSet<CellId>,
    regions: HashMap<CellId, Vec<Rect>>,
}

impl Constraints {
    /// No locks, no regions: the full-placement case.
    pub fn free() -> Self {
        Self::default()
    }

    /// Marks a cell immovable (it must already have a location).
    pub fn lock(&mut self, cell: CellId) {
        self.locked.insert(cell);
    }

    /// Locks every cell in the iterator.
    pub fn lock_all(&mut self, cells: impl IntoIterator<Item = CellId>) {
        self.locked.extend(cells);
    }

    /// Confines a cell's CLB placement to `rect`.
    pub fn confine(&mut self, cell: CellId, rect: Rect) {
        self.regions.insert(cell, vec![rect]);
    }

    /// Confines a cell to the *union* of several rectangles (used for
    /// cleared multi-tile regions, which are rarely rectangular).
    ///
    /// # Panics
    ///
    /// Panics on an empty rectangle list.
    pub fn confine_any(&mut self, cell: CellId, rects: Vec<Rect>) {
        assert!(!rects.is_empty(), "region must have at least one rectangle");
        self.regions.insert(cell, rects);
    }

    /// True if the cell may not move.
    pub fn is_locked(&self, cell: CellId) -> bool {
        self.locked.contains(&cell)
    }

    /// The cell's region rectangles, if constrained.
    pub fn region_of(&self, cell: CellId) -> Option<&[Rect]> {
        self.regions.get(&cell).map(Vec::as_slice)
    }

    /// Number of locked cells.
    pub fn num_locked(&self) -> usize {
        self.locked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_roundtrip() {
        let mut c = Constraints::free();
        c.lock(CellId::new(0));
        c.lock_all([CellId::new(1), CellId::new(2)]);
        c.confine(CellId::new(5), Rect::new(1, 1, 2, 2));
        assert_eq!(c.num_locked(), 3);
        assert!(c.is_locked(CellId::new(2)));
        assert!(!c.is_locked(CellId::new(5)));
        assert_eq!(
            c.region_of(CellId::new(5)),
            Some(&[Rect::new(1, 1, 2, 2)][..])
        );
        assert_eq!(c.region_of(CellId::new(0)), None);
        c.confine_any(
            CellId::new(6),
            vec![Rect::new(0, 0, 1, 1), Rect::new(4, 4, 5, 5)],
        );
        assert_eq!(c.region_of(CellId::new(6)).unwrap().len(), 2);
    }

    #[test]
    fn config_presets() {
        let fast = PlacerConfig::fast(9);
        assert_eq!(fast.seed, 9);
        assert!(fast.max_temps < PlacerConfig::default().max_temps);
    }
}

//! `debugd` — debug-as-a-service over the tiled FPGA debug flow.
//!
//! The paper's protocol (detect → localize → confirm → correct,
//! paying only tiled re-place-and-route per iteration) is wrapped
//! here as a service: clients submit *campaign requests* — design,
//! error budget, localization strategy, physical flow, stimulus —
//! and the orchestrator executes hundreds of them concurrently on a
//! work-stealing pool, sharing each design's implemented artifact
//! (netlist, routing graph, tile plan) as [`std::sync::Arc`]s across
//! every campaign that requests it.
//!
//! The layers, bottom-up:
//!
//! * [`json`] — the hand-rolled parser/escaper the wire protocol
//!   uses (the workspace is offline; there is no serde).
//! * [`request`] — [`request::CampaignRequest`]: the JSON request
//!   schema and its decoding into session-level objects.
//! * [`artifacts`] — [`artifacts::ArtifactStore`]: build each
//!   distinct (design, tiles, seed) implement once, share it forever.
//! * [`campaign`] — one request → one `DebugSession` campaign →
//!   a deterministic report document plus a `DebugEvent` stream.
//! * [`orchestrator`] — [`orchestrator::run_batch`] fans campaigns
//!   over the pool (panics caught per-campaign, queue always
//!   drained); [`orchestrator::serve`] wraps it in the
//!   requests-dir/reports-dir file-queue protocol the `debugd` bin
//!   speaks.
//! * [`telemetry`] — fleet-wide counters: campaigns/sec, per-phase
//!   effort ledgers, tap/ECO distributions, queue depth, worker
//!   utilization, artifact-cache hits.
//!
//! Determinism contract: everything campaign-scoped (reports, event
//! streams) is bit-identical whatever the worker count; wall-clock
//! lives only in the telemetry. `tests/fleet.rs` enforces this.

pub mod artifacts;
pub mod campaign;
pub mod json;
pub mod orchestrator;
pub mod request;
pub mod telemetry;

pub use artifacts::{ArtifactStore, DesignArtifact};
pub use campaign::{run_campaign, run_campaign_observed, CampaignResult, CampaignStatus};
pub use orchestrator::{
    run_batch, run_batch_observed, serve, FleetOutcome, ServeOptions, ServeSummary,
};
pub use request::{CampaignRequest, FlowKind, PatternKind, StrategyKind};
pub use telemetry::FleetTelemetry;

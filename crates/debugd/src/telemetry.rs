//! Fleet-wide telemetry — a *view* over the metrics registry.
//!
//! The per-campaign documents are deterministic by contract
//! ([`crate::campaign`]); wall-clock lives in the registry's measured
//! section. Since the observability refactor this type no longer
//! keeps its own books: the orchestrator records everything into an
//! [`obs::MetricsRegistry`] and [`FleetTelemetry::from_snapshot`]
//! projects the familiar `telemetry.json` document out of a snapshot
//! (a whole `serve` lifetime, or one batch via
//! [`obs::MetricsSnapshot::diff`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use obs::{HistogramData, MetricsSnapshot};
use tiling::effort::{CadEffort, Phase, PhaseEffort};
use tiling::EffortLedger;

/// Aggregated fleet counters.
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    /// Campaigns processed.
    pub campaigns: usize,
    /// ... that completed.
    pub completed: usize,
    /// ... that failed with a pipeline error.
    pub failed: usize,
    /// ... whose worker panicked (caught, queue drained).
    pub panicked: usize,
    /// Campaigns rejected before reaching a worker (bad requests).
    pub rejected: usize,
    /// Worker-pool width the batch ran at.
    pub workers: usize,
    /// Wall-clock spent executing batches.
    pub wall: Duration,
    /// Mean fraction of wall time workers spent inside campaigns.
    pub worker_utilization: f64,
    /// Tasks claimed from a non-owner queue (work-stealing traffic).
    pub steals: usize,
    /// High-water mark of queued campaigns.
    pub peak_queued: usize,
    /// Artifacts built (implement runs paid).
    pub artifact_builds: usize,
    /// Artifact cache hits (implement runs saved).
    pub artifact_hits: usize,
    /// Merged per-phase ledger across every completed campaign.
    pub ledger: EffortLedger,
    /// taps-per-campaign → campaign count.
    pub taps_histogram: BTreeMap<usize, usize>,
    /// ECOs-per-campaign → campaign count.
    pub ecos_histogram: BTreeMap<usize, usize>,
}

impl FleetTelemetry {
    /// Projects the telemetry document out of a metrics snapshot: the
    /// deterministic counters rebuild the campaign/status/phase-ledger
    /// numbers, the measured series supply wall-clock, utilization,
    /// steals, and queue depth.
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        let workers = snap.value_u64("fleet_workers", &[]) as usize;
        let wall_us = snap.value_u64("fleet_wall_microseconds_total", &[]);
        let busy_us = snap.value_u64("fleet_worker_busy_microseconds_total", &[]);
        let worker_utilization = if wall_us > 0 && workers > 0 {
            busy_us as f64 / (wall_us as f64 * workers as f64)
        } else {
            0.0
        };
        let mut ledger = EffortLedger::default();
        for ph in Phase::ALL {
            let labels = [("phase", ph.name())];
            ledger.set_phase(
                ph,
                PhaseEffort {
                    effort: CadEffort {
                        place_moves: snap.value_u64("session_phase_place_moves_total", &labels),
                        route_expansions: snap
                            .value_u64("session_phase_route_expansions_total", &labels),
                    },
                    ecos: snap.value_u64("session_phase_ecos_total", &labels) as usize,
                    tiles_cleared: snap.value_u64("session_phase_tiles_cleared_total", &labels)
                        as usize,
                },
            );
        }
        Self {
            campaigns: snap.sum_counters("debugd_campaigns_total") as usize,
            completed: snap.value_u64("debugd_campaigns_total", &[("status", "completed")])
                as usize,
            failed: snap.value_u64("debugd_campaigns_total", &[("status", "failed")]) as usize,
            panicked: snap.value_u64("debugd_campaigns_total", &[("status", "panicked")]) as usize,
            rejected: snap.value_u64("debugd_rejected_total", &[]) as usize,
            workers,
            wall: Duration::from_micros(wall_us),
            worker_utilization,
            steals: snap.value_u64("fleet_steals_total", &[]) as usize,
            peak_queued: snap.value_u64("fleet_peak_queued", &[]) as usize,
            artifact_builds: snap.value_u64("artifact_builds_total", &[]) as usize,
            artifact_hits: snap.value_u64("artifact_hits_total", &[]) as usize,
            ledger,
            taps_histogram: histogram_map(snap.histogram("campaign_taps", &[])),
            ecos_histogram: histogram_map(snap.histogram("campaign_ecos", &[])),
        }
    }

    /// Campaigns per wall-clock second (0 when no time elapsed).
    pub fn campaigns_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.campaigns as f64 / s
        } else {
            0.0
        }
    }

    /// Renders the telemetry document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"campaigns\": {},", self.campaigns);
        let _ = writeln!(out, "  \"completed\": {},", self.completed);
        let _ = writeln!(out, "  \"failed\": {},", self.failed);
        let _ = writeln!(out, "  \"panicked\": {},", self.panicked);
        let _ = writeln!(out, "  \"rejected\": {},", self.rejected);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"wall_seconds\": {:.6},", self.wall.as_secs_f64());
        let _ = writeln!(
            out,
            "  \"campaigns_per_sec\": {:.3},",
            self.campaigns_per_sec()
        );
        let _ = writeln!(
            out,
            "  \"worker_utilization\": {:.4},",
            self.worker_utilization
        );
        let _ = writeln!(out, "  \"steals\": {},", self.steals);
        let _ = writeln!(out, "  \"queue_peak\": {},", self.peak_queued);
        let _ = writeln!(out, "  \"artifact_builds\": {},", self.artifact_builds);
        let _ = writeln!(out, "  \"artifact_hits\": {},", self.artifact_hits);
        out.push_str("  \"phase_effort_units\": {");
        for (i, ph) in Phase::ALL.iter().enumerate() {
            let pe = self.ledger.phase(*ph);
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if i == 0 { "" } else { ", " },
                ph.name(),
                pe.effort.total()
            );
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"total_ecos\": {},", self.ledger.total_ecos());
        out.push_str(&histogram_json("taps_histogram", &self.taps_histogram));
        out.push_str(",\n");
        out.push_str(&histogram_json("ecos_histogram", &self.ecos_histogram));
        out.push_str("\n}\n");
        out
    }
}

/// A histogram series' raw value → count map (empty when absent).
fn histogram_map(h: Option<&HistogramData>) -> BTreeMap<usize, usize> {
    h.map(|h| {
        h.counts()
            .iter()
            .map(|(&v, &n)| (v as usize, n as usize))
            .collect()
    })
    .unwrap_or_default()
}

fn histogram_json(name: &str, h: &BTreeMap<usize, usize>) -> String {
    let body = h
        .iter()
        .map(|(k, v)| format!("{{\"value\": {k}, \"campaigns\": {v}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("  \"{name}\": [{body}]")
}

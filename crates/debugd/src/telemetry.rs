//! Fleet-wide telemetry.
//!
//! The per-campaign documents are deterministic by contract
//! ([`crate::campaign`]); this is the one place wall-clock lives.
//! Aggregated over a batch (and cumulatively over a `serve` loop's
//! lifetime): throughput, per-phase effort totals, tap/ECO
//! distributions, queue depth, worker utilization, artifact-cache
//! behavior.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use parallel::PoolStats;
use tiling::effort::Phase;
use tiling::EffortLedger;

use crate::campaign::{CampaignResult, CampaignStatus};

/// Aggregated fleet counters.
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    /// Campaigns processed.
    pub campaigns: usize,
    /// ... that completed.
    pub completed: usize,
    /// ... that failed with a pipeline error.
    pub failed: usize,
    /// ... whose worker panicked (caught, queue drained).
    pub panicked: usize,
    /// Campaigns rejected before reaching a worker (bad requests).
    pub rejected: usize,
    /// Worker-pool width the batch ran at.
    pub workers: usize,
    /// Wall-clock spent executing batches.
    pub wall: Duration,
    /// Mean fraction of wall time workers spent inside campaigns.
    pub worker_utilization: f64,
    /// Tasks claimed from a non-owner queue (work-stealing traffic).
    pub steals: usize,
    /// High-water mark of queued campaigns.
    pub peak_queued: usize,
    /// Artifacts built (implement runs paid).
    pub artifact_builds: usize,
    /// Artifact cache hits (implement runs saved).
    pub artifact_hits: usize,
    /// Merged per-phase ledger across every completed campaign.
    pub ledger: EffortLedger,
    /// taps-per-campaign → campaign count.
    pub taps_histogram: BTreeMap<usize, usize>,
    /// ECOs-per-campaign → campaign count.
    pub ecos_histogram: BTreeMap<usize, usize>,
}

impl FleetTelemetry {
    /// Campaigns per wall-clock second (0 when no time elapsed).
    pub fn campaigns_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.campaigns as f64 / s
        } else {
            0.0
        }
    }

    /// Folds one batch's results and pool stats in.
    pub fn absorb_batch(&mut self, results: &[CampaignResult], stats: &PoolStats) {
        for r in results {
            self.campaigns += 1;
            match &r.status {
                CampaignStatus::Completed => self.completed += 1,
                CampaignStatus::Failed(_) => self.failed += 1,
                CampaignStatus::Panicked(_) => self.panicked += 1,
            }
            if let Some(report) = &r.report {
                self.ledger.merge(&report.ledger);
                *self.taps_histogram.entry(report.taps_inserted).or_insert(0) += 1;
                *self
                    .ecos_histogram
                    .entry(report.ledger.total_ecos())
                    .or_insert(0) += 1;
            }
        }
        // Utilization is wall-weighted across batches.
        let prev = self.wall.as_secs_f64();
        let add = stats.wall.as_secs_f64();
        if prev + add > 0.0 {
            self.worker_utilization =
                (self.worker_utilization * prev + stats.utilization() * add) / (prev + add);
        }
        self.wall += stats.wall;
        self.workers = self.workers.max(stats.tasks_per_worker.len());
        self.steals += stats.steals;
        self.peak_queued = self.peak_queued.max(stats.peak_queued);
    }

    /// Records the artifact-store counters (absolute, not deltas).
    pub fn set_artifact_stats(&mut self, builds: usize, hits: usize) {
        self.artifact_builds = builds;
        self.artifact_hits = hits;
    }

    /// Renders the telemetry document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"campaigns\": {},", self.campaigns);
        let _ = writeln!(out, "  \"completed\": {},", self.completed);
        let _ = writeln!(out, "  \"failed\": {},", self.failed);
        let _ = writeln!(out, "  \"panicked\": {},", self.panicked);
        let _ = writeln!(out, "  \"rejected\": {},", self.rejected);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"wall_seconds\": {:.6},", self.wall.as_secs_f64());
        let _ = writeln!(
            out,
            "  \"campaigns_per_sec\": {:.3},",
            self.campaigns_per_sec()
        );
        let _ = writeln!(
            out,
            "  \"worker_utilization\": {:.4},",
            self.worker_utilization
        );
        let _ = writeln!(out, "  \"steals\": {},", self.steals);
        let _ = writeln!(out, "  \"queue_peak\": {},", self.peak_queued);
        let _ = writeln!(out, "  \"artifact_builds\": {},", self.artifact_builds);
        let _ = writeln!(out, "  \"artifact_hits\": {},", self.artifact_hits);
        out.push_str("  \"phase_effort_units\": {");
        for (i, ph) in Phase::ALL.iter().enumerate() {
            let pe = self.ledger.phase(*ph);
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if i == 0 { "" } else { ", " },
                ph.name(),
                pe.effort.total()
            );
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"total_ecos\": {},", self.ledger.total_ecos());
        out.push_str(&histogram_json("taps_histogram", &self.taps_histogram));
        out.push_str(",\n");
        out.push_str(&histogram_json("ecos_histogram", &self.ecos_histogram));
        out.push_str("\n}\n");
        out
    }
}

fn histogram_json(name: &str, h: &BTreeMap<usize, usize>) -> String {
    let body = h
        .iter()
        .map(|(k, v)| format!("{{\"value\": {k}, \"campaigns\": {v}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("  \"{name}\": [{body}]")
}

//! Fleet throughput benchmark — the standing heavy-traffic headline
//! metric (`BENCH_fleet.json`) next to `BENCH_multi.json`.
//!
//! Builds a mixed campaign batch (designs × strategies × flows ×
//! error budgets), runs it twice through the orchestrator — once on
//! one worker (the serial reference) and once on the host's pool —
//! asserts the report documents are **byte-identical** across the
//! two runs, and emits:
//!
//! * a **deterministic** section: per-design campaign rows (taps,
//!   ECOs, effort units) and a scaling curve — makespan of the
//!   batch's measured per-campaign effort units under greedy
//!   (longest-processing-time) list scheduling at 1/2/4/8 workers.
//!   Effort units are the workspace's reproducible work metric (see
//!   `tiling::effort`): wall-clock on any particular host is not
//!   reproducible, these schedules are, so this is the section CI's
//!   freshness gate compares byte-for-byte across regenerations.
//! * a **measured** section: wall-clock, campaigns/sec, worker
//!   utilization and steal counts on the host that ran the bench,
//!   plus projected campaigns/sec per worker count (the modeled
//!   makespans anchored by the measured effort-units/sec rate).
//!
//! Run: `cargo run --release -p debugd --bin fleet`
//! (pass `--quick` for the one-design batch CI runs end-to-end;
//! quick results go to `BENCH_fleet.quick.json`, which is
//! gitignored). Pass `--trace <base>` to also emit `<base>.trace.json`
//! (Chrome trace-event JSON, loadable in Perfetto: per-campaign phase
//! spans plus one track per pool worker), `<base>.trace.jsonl`,
//! `<base>.metrics.prom` (the pooled run's metrics exposition) and
//! `<base>.metrics.serial.prom` (the serial reference's) — whose
//! deterministic sections this bin asserts byte-identical on every
//! run, traced or not. A bare stem collects under the gitignored
//! `artifacts/` directory.

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::fmt::Write as _;

use debugd::{
    run_batch_observed, ArtifactStore, CampaignRequest, CampaignStatus, FlowKind, StrategyKind,
};
use obs::{MetricsRegistry, Tracer};
use synth::PaperDesign;

/// The modeled worker counts of the scaling curve.
const CURVE: [usize; 4] = [1, 2, 4, 8];

/// One design's aggregated row.
struct Row {
    design: &'static str,
    campaigns: usize,
    taps: usize,
    ecos: usize,
    effort_units: u64,
    /// Per-campaign effort units (the scheduling jobs).
    jobs: Vec<u64>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let args: Vec<String> = std::env::args().collect();
    let trace_base = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned());
    let designs: &[PaperDesign] = if quick {
        &[PaperDesign::NineSym]
    } else {
        &[PaperDesign::NineSym, PaperDesign::Styr, PaperDesign::Sand]
    };
    // Full mode runs the whole batch twice (serial reference + pool),
    // and the sequential designs' campaigns are stream-mode-expensive;
    // 6 per design keeps the release-job sweep in minutes while still
    // covering both strategies, both flow kinds and k = 2 per design.
    let per_design = if quick { 8 } else { 6 };

    // The campaign mix: strategies and flows alternate, error budgets
    // cycle 1/1/2, seeds stay distinct — all deterministic.
    let mut requests: Vec<CampaignRequest> = Vec::new();
    for &design in designs {
        for i in 0..per_design {
            let k = [1usize, 1, 2][i % 3];
            requests.push(CampaignRequest {
                id: format!("{}-{i:02}", design.name().replace(' ', "_")),
                design,
                strategy: if i % 2 == 0 {
                    StrategyKind::LinearBatches
                } else {
                    StrategyKind::BinarySearch
                },
                flow: if i % 4 == 3 {
                    FlowKind::QuickEco
                } else {
                    FlowKind::Tiled
                },
                seed: 7,
                error_seeds: (0..k as u64).map(|e| 31 + 7 * i as u64 + e).collect(),
                ..Default::default()
            });
        }
    }
    let campaigns = requests.len();
    println!(
        "fleet: {campaigns} campaigns over {} design(s)",
        designs.len()
    );

    // Serial reference: one worker, bit-exact baseline.
    let store = ArtifactStore::new();
    let serial_registry = MetricsRegistry::new();
    let t0 = std::time::Instant::now();
    let serial = run_batch_observed(&store, &requests, 1, &serial_registry, None);
    let wall_serial = t0.elapsed().as_secs_f64();

    // Host pool: same batch, every available worker, fresh store so
    // artifact builds are paid (and telemetered) the same way.
    let host_workers = parallel::default_workers();
    let pool_store = ArtifactStore::new();
    let pool_registry = MetricsRegistry::new();
    let tracer = trace_base.as_deref().map(|_| Tracer::new());
    let t1 = std::time::Instant::now();
    let pooled = run_batch_observed(
        &pool_store,
        &requests,
        host_workers,
        &pool_registry,
        tracer.as_ref(),
    );
    let wall_pool = t1.elapsed().as_secs_f64();

    // The determinism contract, enforced right here in the bench.
    for (s, p) in serial.results.iter().zip(&pooled.results) {
        assert_eq!(
            s.status,
            CampaignStatus::Completed,
            "campaign {} did not complete",
            s.id
        );
        assert!(
            s.report_json == p.report_json && s.events == p.events,
            "campaign {} differs between 1 and {host_workers} worker(s)",
            s.id
        );
    }
    // Same contract, extended to the metrics layer: every counter in
    // the deterministic exposition section must be byte-identical
    // between the 1-worker and pooled runs.
    assert_eq!(
        serial_registry.render_deterministic(),
        pool_registry.render_deterministic(),
        "deterministic metrics differ between 1 and {host_workers} worker(s)"
    );
    println!(
        "fleet: {campaigns} reports + deterministic metrics byte-identical at 1 vs \
         {host_workers} worker(s); serial {wall_serial:.2}s, pool {wall_pool:.2}s"
    );

    if let (Some(base), Some(tracer)) = (trace_base.as_deref(), tracer.as_ref()) {
        let base = obs::artifact_base(base)?;
        let base = base.display();
        std::fs::write(format!("{base}.trace.json"), tracer.to_chrome_trace())?;
        std::fs::write(format!("{base}.trace.jsonl"), tracer.to_jsonl())?;
        std::fs::write(
            format!("{base}.metrics.prom"),
            pool_registry.render_prometheus(),
        )?;
        std::fs::write(
            format!("{base}.metrics.serial.prom"),
            serial_registry.render_prometheus(),
        )?;
        println!("trace + metrics artifacts written to {base}.*");
    }

    // Aggregate per-design rows from the serial run's reports.
    let mut rows: Vec<Row> = Vec::new();
    for &design in designs {
        let mut row = Row {
            design: design.name(),
            campaigns: 0,
            taps: 0,
            ecos: 0,
            effort_units: 0,
            jobs: Vec::new(),
        };
        for (req, res) in requests.iter().zip(&serial.results) {
            if req.design != design {
                continue;
            }
            let report = res
                .report
                .as_ref()
                .expect("completed campaign has a report");
            row.campaigns += 1;
            row.taps += report.taps_inserted;
            row.ecos += report.ledger.total_ecos();
            let units = report.ledger.total().total();
            row.effort_units += units;
            row.jobs.push(units);
        }
        rows.push(row);
    }

    // Measured anchor: how fast this host chews effort units.
    let total_units: u64 = rows.iter().map(|r| r.effort_units).sum();
    let units_per_sec = if wall_serial > 0.0 {
        total_units as f64 / wall_serial
    } else {
        0.0
    };

    let all_jobs: Vec<u64> = rows.iter().flat_map(|r| r.jobs.iter().copied()).collect();
    for r in &rows {
        let m1 = makespan(&r.jobs, 1);
        let m4 = makespan(&r.jobs, 4);
        println!(
            "  {:<12} {} campaigns, {} effort units, modeled speedup at 4 workers: {:.2}x",
            r.design,
            r.campaigns,
            r.effort_units,
            m1 as f64 / m4 as f64
        );
    }

    let path = if quick {
        "BENCH_fleet.quick.json"
    } else {
        "BENCH_fleet.json"
    };
    std::fs::write(
        path,
        render_json(
            quick,
            &rows,
            &all_jobs,
            &pooled.telemetry,
            host_workers,
            wall_serial,
            wall_pool,
            units_per_sec,
        ),
    )?;
    println!("machine-readable results written to {path}");
    Ok(())
}

/// Greedy LPT list-scheduling makespan of `jobs` on `workers`
/// machines, in effort units. Deterministic: ties broken by lowest
/// worker index, equal-length jobs kept in row order by the stable
/// sort.
fn makespan(jobs: &[u64], workers: usize) -> u64 {
    let mut sorted: Vec<u64> = jobs.to_vec();
    sorted.sort_by(|a, b| b.cmp(a));
    let mut load = vec![0u64; workers.max(1)];
    for j in sorted {
        let w = (0..load.len())
            .min_by_key(|&w| (load[w], w))
            .expect("nonempty");
        load[w] += j;
    }
    load.into_iter().max().unwrap_or(0)
}

fn scaling_json(jobs: &[u64]) -> String {
    let m1 = makespan(jobs, 1);
    CURVE
        .iter()
        .map(|&w| {
            let m = makespan(jobs, w);
            format!(
                "{{\"workers\": {w}, \"makespan_units\": {m}, \"speedup\": {:.3}}}",
                if m > 0 { m1 as f64 / m as f64 } else { 1.0 }
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    rows: &[Row],
    all_jobs: &[u64],
    pool_telemetry: &debugd::FleetTelemetry,
    host_workers: usize,
    wall_serial: f64,
    wall_pool: f64,
    units_per_sec: f64,
) -> String {
    let campaigns: usize = rows.iter().map(|r| r.campaigns).sum();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fleet\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"deterministic\": {\n");
    let _ = writeln!(out, "    \"campaigns\": {campaigns},");
    out.push_str("    \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"design\": \"{}\", \"campaigns\": {}, \"taps\": {}, \"ecos\": {}, \
             \"effort_units\": {}, \"scaling\": [{}]}}",
            r.design,
            r.campaigns,
            r.taps,
            r.ecos,
            r.effort_units,
            scaling_json(&r.jobs),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ],\n");
    let _ = writeln!(out, "    \"fleet_scaling\": [{}]", scaling_json(all_jobs));
    out.push_str("  },\n");
    out.push_str("  \"measured\": {\n");
    let _ = writeln!(out, "    \"host_workers\": {host_workers},");
    let _ = writeln!(out, "    \"wall_seconds_serial\": {wall_serial:.3},");
    let _ = writeln!(out, "    \"wall_seconds_pool\": {wall_pool:.3},");
    let _ = writeln!(
        out,
        "    \"campaigns_per_sec_serial\": {:.3},",
        if wall_serial > 0.0 {
            campaigns as f64 / wall_serial
        } else {
            0.0
        }
    );
    let _ = writeln!(
        out,
        "    \"campaigns_per_sec_pool\": {:.3},",
        if wall_pool > 0.0 {
            campaigns as f64 / wall_pool
        } else {
            0.0
        }
    );
    let _ = writeln!(out, "    \"effort_units_per_sec\": {units_per_sec:.1},");
    let _ = writeln!(
        out,
        "    \"worker_utilization\": {:.4},",
        pool_telemetry.worker_utilization
    );
    let _ = writeln!(out, "    \"steals\": {},", pool_telemetry.steals);
    let projected = CURVE
        .iter()
        .map(|&w| {
            let m = makespan(all_jobs, w);
            let secs = if units_per_sec > 0.0 {
                m as f64 / units_per_sec
            } else {
                0.0
            };
            format!(
                "{{\"workers\": {w}, \"campaigns_per_sec\": {:.3}}}",
                if secs > 0.0 {
                    campaigns as f64 / secs
                } else {
                    0.0
                }
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "    \"projected_campaigns_per_sec\": [{projected}]");
    out.push_str("  }\n}\n");
    out
}

//! The `debugd` server binary: file-queue debug-as-a-service.
//!
//! ```text
//! debugd --root <dir> [--workers N] [--once] [--poll-ms N]
//! ```
//!
//! Clients drop request JSONs into `<root>/requests/`, the server
//! writes `<root>/reports/<id>.json` + `<root>/events/<id>.jsonl`
//! per campaign and keeps `<root>/telemetry.json` current. Touch
//! `<root>/stop` to shut it down; `--once` drains the queue present
//! at startup and exits (the mode the integration tests use).

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use debugd::ServeOptions;

fn usage() -> ExitCode {
    eprintln!("usage: debugd --root <dir> [--workers N] [--once] [--poll-ms N]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut opts = ServeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => opts.workers = v,
                _ => return usage(),
            },
            "--poll-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => opts.poll = Duration::from_millis(v),
                None => return usage(),
            },
            "--once" => opts.once = true,
            _ => return usage(),
        }
    }
    let Some(root) = root else {
        return usage();
    };
    println!(
        "debugd: serving {} with {} workers ({})",
        root.display(),
        opts.workers,
        if opts.once {
            "drain once"
        } else {
            "until stopped"
        }
    );
    match debugd::serve(&root, &opts) {
        Ok(summary) => {
            println!(
                "debugd: done — {} campaign(s), {} rejected, {} scan(s)",
                summary.campaigns, summary.rejected, summary.scans
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("debugd: {e}");
            ExitCode::FAILURE
        }
    }
}

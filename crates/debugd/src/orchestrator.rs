//! The orchestrator: batch execution and the file-queue service.
//!
//! ## Batch path ([`run_batch`])
//!
//! Takes a slice of parsed requests, resolves each request's design
//! artifact through the shared [`ArtifactStore`] (building every
//! distinct artifact exactly once), then fans the campaigns out over
//! a [`parallel`] work-stealing pool. Results come back **in request
//! order** regardless of worker count, and each campaign's report
//! document is deterministic, so `run_batch(.., workers = 64)` and
//! `run_batch(.., workers = 1)` produce byte-identical reports — the
//! fleet determinism tests pin this down.
//!
//! A panicking campaign (pipeline bug, or the `inject_panic` test
//! hook) is caught *inside* its worker task: the pool never sees the
//! panic, the queue drains normally, and the campaign reports status
//! `"panicked"` with the payload.
//!
//! ## File-queue path ([`serve`])
//!
//! The `debugd` bin wraps [`run_batch`] in a directory protocol:
//!
//! ```text
//! <root>/requests/*.json     one request per file (client writes)
//! <root>/reports/<id>.json   persisted report per campaign
//! <root>/events/<id>.jsonl   streamed DebugEvents, one per line
//! <root>/archive/            processed request files move here
//! <root>/telemetry.json      cumulative fleet telemetry
//! <root>/stop                touch to shut the server down
//! ```
//!
//! Requests are picked up in filename order (so clients can encode
//! priority), parsed, and batch-executed; unparseable files get a
//! `"rejected"` report named after the file stem.

use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::artifacts::ArtifactStore;
use crate::campaign::{failure_result, run_campaign, CampaignResult, CampaignStatus};
use crate::json::escape;
use crate::request::CampaignRequest;
use crate::telemetry::FleetTelemetry;

/// One batch's outcome: per-campaign results in request order, plus
/// the telemetry the batch generated.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One result per request, in request order.
    pub results: Vec<CampaignResult>,
    /// Telemetry for this batch alone.
    pub telemetry: FleetTelemetry,
}

/// Turns a caught panic payload into a printable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes a batch of campaigns over `workers` work-stealing
/// threads, sharing design artifacts through `store`.
///
/// Artifact resolution happens up front (once per distinct key, not
/// once per campaign); campaigns whose artifact fails to build report
/// status `"failed"` without occupying a worker.
pub fn run_batch(
    store: &ArtifactStore,
    requests: &[CampaignRequest],
    workers: usize,
) -> FleetOutcome {
    // Resolve artifacts first: the store dedups, so this pays one
    // implement() per distinct (design, tiles, seed) and every
    // campaign holds an Arc to the shared result.
    let resolved: Vec<Result<Arc<crate::artifacts::DesignArtifact>, String>> = requests
        .iter()
        .map(|req| store.get_or_build(req).map_err(|e| e.to_string()))
        .collect();
    let jobs: Vec<(usize, &CampaignRequest)> = requests.iter().enumerate().collect();
    let resolved = &resolved;
    let (results, stats) = parallel::map_with_stats(workers, jobs, |(i, req)| {
        match &resolved[i] {
            Err(e) => failure_result(
                req,
                CampaignStatus::Failed(format!("artifact build failed: {e}")),
                Vec::new(),
            ),
            Ok(artifact) => {
                // Catch panics here, inside the task: the pool keeps
                // draining and the failure becomes a reported result.
                match catch_unwind(AssertUnwindSafe(|| run_campaign(artifact, req))) {
                    Ok(result) => result,
                    Err(payload) => failure_result(
                        req,
                        CampaignStatus::Panicked(panic_message(payload.as_ref())),
                        Vec::new(),
                    ),
                }
            }
        }
    });
    let mut telemetry = FleetTelemetry::default();
    telemetry.absorb_batch(&results, &stats);
    let (builds, hits) = store.stats();
    telemetry.set_artifact_stats(builds, hits);
    FleetOutcome { results, telemetry }
}

/// `serve` configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker-pool width per batch.
    pub workers: usize,
    /// Process the requests present now, then exit (no polling).
    pub once: bool,
    /// Poll interval between queue scans.
    pub poll: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: parallel::default_workers(),
            once: false,
            poll: Duration::from_millis(200),
        }
    }
}

/// What a `serve` run processed before exiting.
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Campaigns executed (any status).
    pub campaigns: usize,
    /// Request files rejected at parse time.
    pub rejected: usize,
    /// Queue-scan iterations performed.
    pub scans: usize,
}

/// Runs the file-queue service until `once` semantics or the stop
/// file ends it. See the module docs for the directory protocol.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable root, undeletable
/// request files). Individual bad *requests* never abort the server.
pub fn serve(root: &Path, opts: &ServeOptions) -> io::Result<ServeSummary> {
    let requests_dir = root.join("requests");
    let reports_dir = root.join("reports");
    let events_dir = root.join("events");
    let archive_dir = root.join("archive");
    for d in [&requests_dir, &reports_dir, &events_dir, &archive_dir] {
        fs::create_dir_all(d)?;
    }
    let stop_file = root.join("stop");
    let store = ArtifactStore::new();
    let mut telemetry = FleetTelemetry::default();
    let mut summary = ServeSummary::default();
    loop {
        summary.scans += 1;
        let mut files: Vec<PathBuf> = fs::read_dir(&requests_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut batch: Vec<CampaignRequest> = Vec::new();
        for path in &files {
            let text = fs::read_to_string(path)?;
            match CampaignRequest::from_json(&text) {
                Ok(req) => batch.push(req),
                Err(e) => {
                    summary.rejected += 1;
                    telemetry.rejected += 1;
                    let stem = path
                        .file_stem()
                        .map_or_else(|| "unnamed".into(), |s| s.to_string_lossy().into_owned());
                    fs::write(
                        reports_dir.join(format!("{stem}.json")),
                        format!(
                            "{{\"id\": \"{}\", \"status\": \"rejected\", \"detail\": \"{}\"}}\n",
                            escape(&stem),
                            escape(&e.to_string()),
                        ),
                    )?;
                }
            }
        }
        if !batch.is_empty() {
            let outcome = run_batch(&store, &batch, opts.workers);
            summary.campaigns += outcome.results.len();
            for r in &outcome.results {
                fs::write(reports_dir.join(format!("{}.json", r.id)), &r.report_json)?;
                let mut stream = r.events.join("\n");
                if !stream.is_empty() {
                    stream.push('\n');
                }
                fs::write(events_dir.join(format!("{}.jsonl", r.id)), stream)?;
            }
            // Batch telemetry folds into the cumulative document.
            let rejected = telemetry.rejected;
            let mut merged = outcome.telemetry;
            merged.rejected = rejected;
            absorb_cumulative(&mut telemetry, &merged);
        }
        for path in &files {
            let name = path.file_name().map_or_else(
                || std::ffi::OsString::from("unnamed.json"),
                std::ffi::OsStr::to_os_string,
            );
            fs::rename(path, archive_dir.join(name))?;
        }
        let (builds, hits) = store.stats();
        telemetry.set_artifact_stats(builds, hits);
        fs::write(root.join("telemetry.json"), telemetry.to_json())?;
        if stop_file.exists() {
            let _ = fs::remove_file(&stop_file);
            break;
        }
        if opts.once {
            break;
        }
        std::thread::sleep(opts.poll);
    }
    Ok(summary)
}

/// Folds one batch's telemetry into the server's cumulative document.
fn absorb_cumulative(total: &mut FleetTelemetry, batch: &FleetTelemetry) {
    total.campaigns += batch.campaigns;
    total.completed += batch.completed;
    total.failed += batch.failed;
    total.panicked += batch.panicked;
    total.rejected = batch.rejected;
    total.workers = total.workers.max(batch.workers);
    let prev = total.wall.as_secs_f64();
    let add = batch.wall.as_secs_f64();
    if prev + add > 0.0 {
        total.worker_utilization =
            (total.worker_utilization * prev + batch.worker_utilization * add) / (prev + add);
    }
    total.wall += batch.wall;
    total.steals += batch.steals;
    total.peak_queued = total.peak_queued.max(batch.peak_queued);
    total.ledger.merge(&batch.ledger);
    for (k, v) in &batch.taps_histogram {
        *total.taps_histogram.entry(*k).or_insert(0) += v;
    }
    for (k, v) in &batch.ecos_histogram {
        *total.ecos_histogram.entry(*k).or_insert(0) += v;
    }
}

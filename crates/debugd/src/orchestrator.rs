//! The orchestrator: batch execution and the file-queue service.
//!
//! ## Batch path ([`run_batch`])
//!
//! Takes a slice of parsed requests, resolves each request's design
//! artifact through the shared [`ArtifactStore`] (building every
//! distinct artifact exactly once), then fans the campaigns out over
//! a [`parallel`] work-stealing pool. Results come back **in request
//! order** regardless of worker count, and each campaign's report
//! document is deterministic, so `run_batch(.., workers = 64)` and
//! `run_batch(.., workers = 1)` produce byte-identical reports — the
//! fleet determinism tests pin this down.
//!
//! A panicking campaign (pipeline bug, or the `inject_panic` test
//! hook) is caught *inside* its worker task: the pool never sees the
//! panic, the queue drains normally, and the campaign reports status
//! `"panicked"` with the payload.
//!
//! ## File-queue path ([`serve`])
//!
//! The `debugd` bin wraps [`run_batch`] in a directory protocol:
//!
//! ```text
//! <root>/requests/*.json     one request per file (client writes)
//! <root>/reports/<id>.json   persisted report per campaign
//! <root>/events/<id>.jsonl   streamed DebugEvents, one per line
//! <root>/archive/            processed request files move here
//! <root>/telemetry.json      cumulative fleet telemetry
//! <root>/metrics.prom        Prometheus-style metrics exposition
//! <root>/stop                touch to shut the server down
//! ```
//!
//! Requests are picked up in filename order (so clients can encode
//! priority), parsed, and batch-executed; unparseable files get a
//! `"rejected"` report named after the file stem.

use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use obs::{MetricsRegistry, Tracer, TrackId};

use crate::artifacts::ArtifactStore;
use crate::campaign::{failure_result, run_campaign_observed, CampaignResult, CampaignStatus};
use crate::json::escape;
use crate::request::CampaignRequest;
use crate::telemetry::FleetTelemetry;

/// One batch's outcome: per-campaign results in request order, plus
/// the telemetry the batch generated.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One result per request, in request order.
    pub results: Vec<CampaignResult>,
    /// Telemetry for this batch alone.
    pub telemetry: FleetTelemetry,
}

/// Turns a caught panic payload into a printable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes a batch of campaigns over `workers` work-stealing
/// threads, sharing design artifacts through `store`.
///
/// Artifact resolution happens up front (once per distinct key, not
/// once per campaign); campaigns whose artifact fails to build report
/// status `"failed"` without occupying a worker.
pub fn run_batch(
    store: &ArtifactStore,
    requests: &[CampaignRequest],
    workers: usize,
) -> FleetOutcome {
    let registry = MetricsRegistry::new();
    run_batch_observed(store, requests, workers, &registry, None)
}

/// [`run_batch`] recording into a caller-owned metrics registry and
/// (optionally) a tracer.
///
/// Deterministic counters (`debugd_campaigns_total`,
/// `session_phase_*`, `evidence_*`, `sim_*`, `artifact_*`, the
/// `campaign_taps`/`campaign_ecos` histograms) land in the registry's
/// deterministic section and are byte-identical whatever the worker
/// count; wall-clock, steals, and queue depth go to the measured
/// section. With a tracer, every campaign gets its own track (request
/// order) carrying its per-phase spans, and one track per pool worker
/// is reconstructed from the pool's busy segments.
pub fn run_batch_observed(
    store: &ArtifactStore,
    requests: &[CampaignRequest],
    workers: usize,
    registry: &MetricsRegistry,
    tracer: Option<&Tracer>,
) -> FleetOutcome {
    let before = registry.snapshot();
    // Semantic validation before anything is paid for: an
    // out-of-range request never builds an artifact and never
    // occupies a worker — it reports `"rejected"` straight away.
    let validity: Vec<Result<(), String>> = requests
        .iter()
        .map(|req| req.validate().map_err(|e| e.to_string()))
        .collect();
    // Resolve artifacts first: the store dedups, so this pays one
    // implement() per distinct (design, tiles, seed) and every
    // campaign holds an Arc to the shared result.
    let resolved: Vec<Option<Result<Arc<crate::artifacts::DesignArtifact>, String>>> = requests
        .iter()
        .zip(&validity)
        .map(|(req, valid)| {
            valid
                .is_ok()
                .then(|| store.get_or_build(req).map_err(|e| e.to_string()))
        })
        .collect();
    // Per-campaign tracks are allocated up front, in request order,
    // so track ids are deterministic however the pool schedules.
    let tracks: Option<Vec<TrackId>> = tracer.map(|t| {
        requests
            .iter()
            .map(|req| t.track(&format!("campaign {}", req.id)))
            .collect()
    });
    let sim_before = sim::counters::snapshot();
    let place_before = place::counters::snapshot();
    let route_before = route::counters::snapshot();
    let t0_us = tracer.map(Tracer::now_us).unwrap_or(0);
    let jobs: Vec<(usize, &CampaignRequest)> = requests.iter().enumerate().collect();
    let resolved = &resolved;
    let tracks = &tracks;
    let validity = &validity;
    let (results, stats) = parallel::map_with_stats(workers, jobs, |(i, req)| {
        let trace = match (tracer, tracks) {
            (Some(t), Some(ids)) => Some((t, ids[i])),
            _ => None,
        };
        match (&validity[i], &resolved[i]) {
            (Err(e), _) => failure_result(req, CampaignStatus::Rejected(e.clone()), Vec::new()),
            (Ok(()), None) => unreachable!("valid requests always resolve an artifact slot"),
            (Ok(()), Some(Err(e))) => failure_result(
                req,
                CampaignStatus::Failed(format!("artifact build failed: {e}")),
                Vec::new(),
            ),
            (Ok(()), Some(Ok(artifact))) => {
                // Catch panics here, inside the task: the pool keeps
                // draining and the failure becomes a reported result.
                match catch_unwind(AssertUnwindSafe(|| {
                    run_campaign_observed(artifact, req, Some(registry), trace)
                })) {
                    Ok(result) => result,
                    Err(payload) => failure_result(
                        req,
                        CampaignStatus::Panicked(panic_message(payload.as_ref())),
                        Vec::new(),
                    ),
                }
            }
        }
    });
    // Batch-level deterministic counters: statuses and per-campaign
    // distributions (sums and BTreeMap-ordered series are
    // order-independent, so serial and pooled runs render the same).
    for r in &results {
        registry.counter_add("debugd_campaigns_total", &[("status", r.status.name())], 1);
        if matches!(r.status, CampaignStatus::Rejected(_)) {
            registry.counter_add("debugd_requests_rejected_total", &[], 1);
        }
        if let Some(report) = &r.report {
            registry.observe("campaign_taps", &[], report.taps_inserted as u64);
            registry.observe("campaign_ecos", &[], report.ledger.total_ecos() as u64);
        }
    }
    // The packed simulator's process-global counters, scraped as a
    // delta over the batch. The delta is deterministic as long as no
    // *other* simulation runs concurrently in this process (the bins
    // run batches sequentially; concurrent tests must not assert
    // exact values).
    let sim_delta = sim::counters::snapshot().delta_since(&sim_before);
    registry.counter_add("sim_sweeps_total", &[], sim_delta.sweeps);
    registry.counter_add("sim_net_words_total", &[], sim_delta.net_words);
    registry.counter_add("sim_lanes_loaded_total", &[], sim_delta.lanes_loaded);
    // Placer/router effort counters, same delta-over-the-batch scrape
    // (order-independent sums keep serial and pooled runs identical).
    let place_delta = place::counters::snapshot().delta_since(&place_before);
    registry.counter_add(
        "place_moves_evaluated_total",
        &[("engine", "annealing")],
        place_delta.moves_annealing,
    );
    registry.counter_add(
        "place_moves_evaluated_total",
        &[("engine", "analytical")],
        place_delta.moves_analytical,
    );
    registry.counter_add("place_cg_iterations_total", &[], place_delta.cg_iterations);
    let route_delta = route::counters::snapshot().delta_since(&route_before);
    registry.counter_add(
        "route_nets_ripped_total",
        &[("mode", "incremental")],
        route_delta.nets_ripped_incremental,
    );
    registry.counter_add(
        "route_nets_ripped_total",
        &[("mode", "full")],
        route_delta.nets_ripped_full,
    );
    let (builds, hits) = store.stats();
    registry.counter_set("artifact_builds_total", &[], builds as u64);
    registry.counter_set("artifact_hits_total", &[], hits as u64);
    registry.measured_add(
        "fleet_wall_microseconds_total",
        &[],
        u64::try_from(stats.wall.as_micros()).unwrap_or(u64::MAX),
    );
    registry.measured_add(
        "fleet_worker_busy_microseconds_total",
        &[],
        u64::try_from(stats.busy_total().as_micros()).unwrap_or(u64::MAX),
    );
    registry.measured_add("fleet_steals_total", &[], stats.steals as u64);
    registry.measured_max("fleet_peak_queued", &[], stats.peak_queued as u64);
    registry.measured_max("fleet_workers", &[], stats.tasks_per_worker.len() as u64);
    if let Some(t) = tracer {
        t.pool_tracks("worker", &stats, t0_us);
    }
    let telemetry = FleetTelemetry::from_snapshot(&registry.snapshot().diff(&before));
    FleetOutcome { results, telemetry }
}

/// `serve` configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker-pool width per batch.
    pub workers: usize,
    /// Process the requests present now, then exit (no polling).
    pub once: bool,
    /// Poll interval between queue scans.
    pub poll: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: parallel::default_workers(),
            once: false,
            poll: Duration::from_millis(200),
        }
    }
}

/// What a `serve` run processed before exiting.
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Campaigns executed (any status).
    pub campaigns: usize,
    /// Request files rejected at parse time.
    pub rejected: usize,
    /// Queue-scan iterations performed.
    pub scans: usize,
}

/// Runs the file-queue service until `once` semantics or the stop
/// file ends it. See the module docs for the directory protocol.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable root, undeletable
/// request files). Individual bad *requests* never abort the server.
pub fn serve(root: &Path, opts: &ServeOptions) -> io::Result<ServeSummary> {
    let requests_dir = root.join("requests");
    let reports_dir = root.join("reports");
    let events_dir = root.join("events");
    let archive_dir = root.join("archive");
    for d in [&requests_dir, &reports_dir, &events_dir, &archive_dir] {
        fs::create_dir_all(d)?;
    }
    let stop_file = root.join("stop");
    let store = ArtifactStore::new();
    // One cumulative registry for the server's lifetime; every loop
    // iteration re-renders `telemetry.json` (the projected view) and
    // `metrics.prom` (the raw exposition) from it.
    let registry = MetricsRegistry::new();
    let mut summary = ServeSummary::default();
    loop {
        summary.scans += 1;
        registry.counter_add("debugd_poll_scans_total", &[], 1);
        let mut files: Vec<PathBuf> = fs::read_dir(&requests_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut batch: Vec<CampaignRequest> = Vec::new();
        for path in &files {
            let text = fs::read_to_string(path)?;
            // Shape first (parse), then ranges (validate): either way
            // the file yields a structured `"rejected"` report instead
            // of a batch slot.
            match CampaignRequest::from_json(&text).and_then(|req| {
                req.validate()?;
                Ok(req)
            }) {
                Ok(req) => batch.push(req),
                Err(e) => {
                    summary.rejected += 1;
                    registry.counter_add("debugd_rejected_total", &[], 1);
                    registry.counter_add("debugd_requests_rejected_total", &[], 1);
                    let stem = path
                        .file_stem()
                        .map_or_else(|| "unnamed".into(), |s| s.to_string_lossy().into_owned());
                    fs::write(
                        reports_dir.join(format!("{stem}.json")),
                        format!(
                            "{{\"id\": \"{}\", \"status\": \"rejected\", \"detail\": \"{}\"}}\n",
                            escape(&stem),
                            escape(&e.to_string()),
                        ),
                    )?;
                }
            }
        }
        if !batch.is_empty() {
            let outcome = run_batch_observed(&store, &batch, opts.workers, &registry, None);
            summary.campaigns += outcome.results.len();
            for r in &outcome.results {
                fs::write(reports_dir.join(format!("{}.json", r.id)), &r.report_json)?;
                let mut stream = r.events.join("\n");
                if !stream.is_empty() {
                    stream.push('\n');
                }
                fs::write(events_dir.join(format!("{}.jsonl", r.id)), stream)?;
            }
        }
        for path in &files {
            let name = path.file_name().map_or_else(
                || std::ffi::OsString::from("unnamed.json"),
                std::ffi::OsStr::to_os_string,
            );
            fs::rename(path, archive_dir.join(name))?;
        }
        let snap = registry.snapshot();
        fs::write(
            root.join("telemetry.json"),
            FleetTelemetry::from_snapshot(&snap).to_json(),
        )?;
        fs::write(root.join("metrics.prom"), snap.render_prometheus())?;
        if stop_file.exists() {
            let _ = fs::remove_file(&stop_file);
            break;
        }
        if opts.once {
            break;
        }
        std::thread::sleep(opts.poll);
    }
    Ok(summary)
}

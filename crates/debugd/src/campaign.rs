//! Executing one campaign request against a shared artifact.
//!
//! Everything this module produces is **deterministic**: event lines
//! and report JSON carry only seeds, counts, cell indices, and
//! effort-unit ledgers — never wall-clock — so running the same
//! request on one worker or sixty-four yields byte-identical output.
//! (The fleet-level telemetry is where timing lives; see
//! [`crate::telemetry`].) The determinism tests in `tests/fleet.rs`
//! hold the service to this.

use std::fmt::Write as _;

use obs::{MetricsRegistry, Tracer, TrackId};
use tiling::effort::Phase;
use tiling::report::DebugReport;
use tiling::session::{DebugEvent, DebugSession};

use crate::artifacts::DesignArtifact;
use crate::json::escape;
use crate::request::CampaignRequest;

/// How a campaign ended, service-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Ran to completion (individual errors may still have escaped
    /// repair — see the report).
    Completed,
    /// The debug pipeline returned an error.
    Failed(String),
    /// The worker panicked; the orchestrator caught it, drained the
    /// rest of the queue, and reports the payload here.
    Panicked(String),
    /// The request was structurally valid JSON but semantically
    /// unservable — out-of-range fields, or a design the DRC
    /// pre-flight rejected. Nothing ran; no worker slot was spent.
    Rejected(String),
}

impl CampaignStatus {
    /// The protocol name (`"completed"` / `"failed"` / `"panicked"` /
    /// `"rejected"`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Completed => "completed",
            Self::Failed(_) => "failed",
            Self::Panicked(_) => "panicked",
            Self::Rejected(_) => "rejected",
        }
    }
}

/// One finished campaign: the report, its event stream, and summary
/// numbers the telemetry aggregates.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The request id.
    pub id: String,
    /// How it ended.
    pub status: CampaignStatus,
    /// The merged session report (None unless `Completed`).
    pub report: Option<DebugReport>,
    /// The event stream, one JSON object per line, in emission order.
    pub events: Vec<String>,
    /// The persisted report document (deterministic JSON).
    pub report_json: String,
}

/// Runs one campaign on (a clone of) the shared artifact.
///
/// The caller owns panic handling: this function panics if the
/// request says so (`inject_panic`, the drain-path test hook) or if
/// the pipeline does, and [`crate::orchestrator::run_batch`] converts
/// either into a [`CampaignStatus::Panicked`] result.
pub fn run_campaign(artifact: &DesignArtifact, req: &CampaignRequest) -> CampaignResult {
    run_campaign_observed(artifact, req, None, None)
}

/// [`run_campaign`] with observability attached: the session records
/// its deterministic phase/evidence counters into `metrics`, and the
/// whole campaign plus its per-phase regions become spans on the
/// given tracer track (the enclosing campaign span carries the
/// campaign's total effort units). Both hooks are optional and change
/// nothing about the deterministic report/event output.
pub fn run_campaign_observed(
    artifact: &DesignArtifact,
    req: &CampaignRequest,
    metrics: Option<&MetricsRegistry>,
    trace: Option<(&Tracer, TrackId)>,
) -> CampaignResult {
    assert!(
        !req.inject_panic,
        "injected fault in campaign '{}' (inject_panic test hook)",
        req.id
    );
    let t0 = trace.map(|(t, _)| t.now_us()).unwrap_or(0);
    // Guard the one stimulus choice that panics instead of erroring:
    // exhaustive enumeration is capped at 24 inputs by `PatternGen`.
    // The artifact knows the real width, so the check lives here
    // rather than in `CampaignRequest::validate`.
    let width = artifact.golden.primary_inputs().len();
    if req.patterns == crate::request::PatternKind::Exhaustive && width > 24 {
        return failure_result(
            req,
            CampaignStatus::Rejected(format!(
                "exhaustive stimulus on a {width}-input design (24 max)"
            )),
            Vec::new(),
        );
    }
    // The mutable working copy: netlist/placement/routing are cloned,
    // hierarchy/device/RRG/plan are shared Arcs.
    let mut td = artifact.td.clone();
    let mut events: Vec<String> = Vec::new();
    let outcome = {
        let mut session = DebugSession::new(&mut td, &artifact.golden)
            .strategy_boxed(req.strategy.instantiate())
            .flow_boxed(req.flow.instantiate())
            .patterns(req.patterns.to_spec(req.pattern_count))
            .seed(req.seed)
            .confirm_with_control(req.confirm_with_control)
            .on_event(|e| {
                let seq = events.len();
                events.push(event_json(seq, e));
            });
        if let Some(registry) = metrics {
            session = session.metrics(registry);
        }
        if let Some((tracer, track)) = trace {
            session = session.trace(tracer, track);
        }
        session.run_campaign(&req.error_seeds)
    };
    match outcome {
        Ok(campaign) => {
            let report = DebugReport::from_outcomes(&campaign.iterations);
            if let Some((tracer, track)) = trace {
                tracer.complete(
                    track,
                    &format!("campaign {}", req.id),
                    "campaign",
                    t0,
                    report.ledger.total().total(),
                );
            }
            let report_json = render_report_json(req, &report, &campaign.iterations, &events);
            CampaignResult {
                id: req.id.clone(),
                status: CampaignStatus::Completed,
                report: Some(report),
                events,
                report_json,
            }
        }
        // A DRC pre-flight error means the *design* was unservable —
        // the session refused it before running anything — which is a
        // rejection, not a pipeline failure.
        Err(e @ tiling::TilingError::Drc { .. }) => {
            failure_result(req, CampaignStatus::Rejected(e.to_string()), events)
        }
        Err(e) => failure_result(req, CampaignStatus::Failed(e.to_string()), events),
    }
}

/// The report document for a campaign that did not complete
/// (pipeline error or caught panic).
pub fn failure_result(
    req: &CampaignRequest,
    status: CampaignStatus,
    events: Vec<String>,
) -> CampaignResult {
    let detail = match &status {
        CampaignStatus::Completed => String::new(),
        CampaignStatus::Failed(m) | CampaignStatus::Panicked(m) | CampaignStatus::Rejected(m) => {
            m.clone()
        }
    };
    let report_json = format!(
        "{{\n  \"id\": \"{}\",\n  \"status\": \"{}\",\n  \"detail\": \"{}\",\n  \"request\": {}\n}}\n",
        escape(&req.id),
        status.name(),
        escape(&detail),
        req.to_json(),
    );
    CampaignResult {
        id: req.id.clone(),
        status,
        report: None,
        events,
        report_json,
    }
}

/// One [`DebugEvent`] as a JSON line for the per-client stream. `seq`
/// is the row's position in the campaign's event stream — monotonic
/// from 0, so event logs join deterministically against traces and
/// any reordering of the persisted lines is detectable.
pub fn event_json(seq: usize, e: &DebugEvent) -> String {
    let body = event_body(e);
    format!("{{\"seq\": {seq}, {}", &body[1..])
}

/// The event's fields as a JSON object (without the `seq` prefix).
fn event_body(e: &DebugEvent) -> String {
    match e {
        DebugEvent::ErrorInjected { iteration, cell } => format!(
            "{{\"event\": \"error_injected\", \"iteration\": {iteration}, \"cell\": {}}}",
            cell.index()
        ),
        DebugEvent::Detected {
            pattern_index,
            output_name,
        } => format!(
            "{{\"event\": \"detected\", \"pattern_index\": {pattern_index}, \"output\": \"{}\"}}",
            escape(output_name)
        ),
        DebugEvent::CleanDesign => "{\"event\": \"clean_design\"}".to_string(),
        DebugEvent::SuspectsComputed {
            structural,
            candidates,
        } => format!(
            "{{\"event\": \"suspects_computed\", \"structural\": {structural}, \"candidates\": {candidates}}}"
        ),
        DebugEvent::TapEco { cells, effort } => format!(
            "{{\"event\": \"tap_eco\", \"cells\": [{}], \"effort\": {}}}",
            ids(cells),
            effort.total()
        ),
        DebugEvent::Observed { diverging } => format!(
            "{{\"event\": \"observed\", \"diverging\": [{}]}}",
            ids(diverging)
        ),
        DebugEvent::Localized { cell } => match cell {
            Some(c) => format!("{{\"event\": \"localized\", \"cell\": {}}}", c.index()),
            None => "{\"event\": \"localized\", \"cell\": null}".to_string(),
        },
        DebugEvent::Confirmed { cell, confirmed } => format!(
            "{{\"event\": \"confirmed\", \"cell\": {}, \"confirmed\": {confirmed}}}",
            cell.index()
        ),
        DebugEvent::Corrected { repaired } => {
            format!("{{\"event\": \"corrected\", \"repaired\": {repaired}}}")
        }
        DebugEvent::ConeSplit {
            clusters,
            exclusive,
            shared,
        } => format!(
            "{{\"event\": \"cone_split\", \"clusters\": {clusters}, \"exclusive\": [{}], \"shared\": {shared}}}",
            exclusive
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        DebugEvent::Attribution {
            cell,
            cluster,
            score,
        } => format!(
            "{{\"event\": \"attribution\", \"cell\": {}, \"cluster\": {cluster}, \"score\": {score:.4}}}",
            cell.index()
        ),
    }
}

fn ids(cells: &[netlist::CellId]) -> String {
    cells
        .iter()
        .map(|c| c.index().to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the persisted report: request echo, merged report, the
/// per-phase ledger, per-iteration rows, and the event count. Every
/// field is deterministic.
fn render_report_json(
    req: &CampaignRequest,
    report: &DebugReport,
    iterations: &[tiling::session::DebugOutcome],
    events: &[String],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": \"{}\",", escape(&req.id));
    let _ = writeln!(out, "  \"status\": \"completed\",");
    let _ = writeln!(out, "  \"request\": {},", req.to_json());
    let _ = writeln!(
        out,
        "  \"report\": {{\"iterations\": {}, \"repaired\": {}, \"localized\": {}, \
         \"taps_inserted\": {}, \"ecos\": {}, \"effort_units\": {}, \
         \"strategy\": \"{}\", \"flow\": \"{}\"}},",
        report.iterations,
        report.repaired,
        report.localized,
        report.taps_inserted,
        report.ledger.total_ecos(),
        report.ledger.total().total(),
        escape(&report.strategy),
        escape(&report.flow),
    );
    out.push_str("  \"phases\": {");
    for (i, ph) in Phase::ALL.iter().enumerate() {
        let pe = report.ledger.phase(*ph);
        let _ = write!(
            out,
            "{}\"{}\": {{\"effort_units\": {}, \"ecos\": {}, \"tiles_cleared\": {}}}",
            if i == 0 { "" } else { ", " },
            ph.name(),
            pe.effort.total(),
            pe.ecos,
            pe.tiles_cleared,
        );
    }
    out.push_str("},\n");
    out.push_str("  \"iterations\": [\n");
    for (i, it) in iterations.iter().enumerate() {
        let localized = it
            .localized
            .map_or("null".to_string(), |c| c.index().to_string());
        let _ = write!(
            out,
            "    {{\"detected\": {}, \"localized\": {}, \"taps\": {}, \"ecos\": {}, \
             \"repaired\": {}, \"confirmed\": {}, \"effort_units\": {}}}",
            it.mismatch.is_some(),
            localized,
            it.taps_inserted,
            it.ecos,
            it.repaired,
            it.confirmed_by_control,
            it.effort.total(),
        );
        out.push_str(if i + 1 < iterations.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"events\": {}", events.len());
    out.push_str("}\n");
    out
}

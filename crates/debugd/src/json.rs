//! Hand-rolled JSON: a tiny recursive-descent parser plus the string
//! escaping the writers need.
//!
//! The offline workspace carries no serde stand-in, and the service
//! protocol is deliberately small: requests and reports are flat
//! objects of strings, numbers, bools, and short arrays. This module
//! covers exactly the JSON subset those need (full string escapes,
//! `f64` numbers, arbitrarily nested arrays/objects) and nothing
//! more — no comments, no trailing commas, no BOM handling.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap), which also makes
    /// re-rendering deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `usize`, if integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What the parser expected.
    pub expected: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns the first position where the input stops being the JSON
/// subset described in the module docs.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            expected,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn literal(&mut self, lit: &'static str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "'{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            // Surrogate pairs are out of scope for the
                            // service protocol; reject rather than
                            // silently mangle.
                            let c = char::from_u32(hex).ok_or_else(|| self.err("a BMP scalar"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("an escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("valid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("a character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("digits"))?;
        s.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            at: start,
            expected: "a number",
        })
    }
}

/// Escapes a string for embedding in JSON output (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_subset() {
        let v = parse(
            r#"{"id": "c-1", "seed": 7, "flags": [true, false, null],
                "nested": {"pi": 3.25, "neg": -2}, "s": "a\"b\\c\ndA"}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("c-1"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("flags").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("nested").unwrap().get("pi"), Some(&Value::Num(3.25)));
        assert_eq!(v.get("nested").unwrap().get("neg"), Some(&Value::Num(-2.0)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage_with_positions() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("nope").is_err());
        let e = parse("  {\"k\" 1}").unwrap_err();
        assert_eq!(e.expected, "':'");
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1} end";
        let doc = format!("{{\"v\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("v").unwrap().as_str(), Some(nasty));
    }
}

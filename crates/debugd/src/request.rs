//! The campaign request: what a client submits to the service.
//!
//! Requests arrive as small JSON objects (one file per request on the
//! file-queue protocol, see [`crate::orchestrator::serve`]). Every
//! field beyond `id` and `design` has a sensible default, so the
//! minimal request is:
//!
//! ```json
//! {"id": "smoke-1", "design": "9sym"}
//! ```
//!
//! and a fully specified one:
//!
//! ```json
//! {
//!   "id": "styr-binary-quick",
//!   "design": "styr",
//!   "target_tiles": 10,
//!   "impl_seed": 41,
//!   "strategy": "binary-search",
//!   "flow": "quick-eco",
//!   "patterns": "lfsr",
//!   "pattern_count": 256,
//!   "seed": 7,
//!   "error_seeds": [31, 32, 33],
//!   "confirm_with_control": true
//! }
//! ```
//!
//! `error_seeds` is the campaign budget: one planted error per seed,
//! all debugged in one [`tiling::session::DebugSession`] campaign
//! (concurrently when there is more than one seed).

use std::fmt;

use synth::PaperDesign;
use tiling::flows::{FullReplaceFlow, IncrementalFlow, QuickEcoFlow, ReimplFlow, TiledFlow};
use tiling::session::PatternSpec;
use tiling::strategy::{BinarySearch, LinearBatches, LocalizationStrategy};

use crate::json::{self, Value};

/// Which localization strategy a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// [`LinearBatches`] with its default batch size.
    #[default]
    LinearBatches,
    /// [`BinarySearch`].
    BinarySearch,
}

impl StrategyKind {
    /// The protocol name (what requests say and reports echo).
    pub fn name(self) -> &'static str {
        match self {
            Self::LinearBatches => "linear-batches",
            Self::BinarySearch => "binary-search",
        }
    }

    /// Parses a protocol name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "linear-batches" => Some(Self::LinearBatches),
            "binary-search" => Some(Self::BinarySearch),
            _ => None,
        }
    }

    /// Builds the strategy object a session consumes.
    pub fn instantiate(self) -> Box<dyn LocalizationStrategy> {
        match self {
            Self::LinearBatches => Box::new(LinearBatches::default()),
            Self::BinarySearch => Box::new(BinarySearch::new()),
        }
    }
}

/// Which physical re-implementation flow a campaign pays per ECO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowKind {
    /// The paper's tiled flow (re-P&R only the affected tiles).
    #[default]
    Tiled,
    /// Full re-place-and-route per ECO (the paper's baseline).
    FullReplace,
    /// Incremental ECO placement.
    Incremental,
    /// Quick ECO (cheapest, lowest quality).
    QuickEco,
}

impl FlowKind {
    /// The protocol name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Tiled => "tiled",
            Self::FullReplace => "full-replace",
            Self::Incremental => "incremental",
            Self::QuickEco => "quick-eco",
        }
    }

    /// Parses a protocol name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "tiled" => Some(Self::Tiled),
            "full-replace" => Some(Self::FullReplace),
            "incremental" => Some(Self::Incremental),
            "quick-eco" => Some(Self::QuickEco),
            _ => None,
        }
    }

    /// Builds the flow object a session consumes.
    pub fn instantiate(self) -> Box<dyn ReimplFlow> {
        match self {
            Self::Tiled => Box::new(TiledFlow::default()),
            Self::FullReplace => Box::new(FullReplaceFlow),
            Self::Incremental => Box::new(IncrementalFlow::default()),
            Self::QuickEco => Box::new(QuickEcoFlow::default()),
        }
    }
}

/// Stimulus choice, protocol-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatternKind {
    /// Exhaustive for narrow designs, 512 LFSR vectors otherwise.
    #[default]
    Auto,
    /// All input vectors.
    Exhaustive,
    /// `count` LFSR vectors.
    Lfsr,
    /// `count` uniform random vectors.
    Random,
}

impl PatternKind {
    /// The protocol name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Exhaustive => "exhaustive",
            Self::Lfsr => "lfsr",
            Self::Random => "random",
        }
    }

    /// Parses a protocol name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(Self::Auto),
            "exhaustive" => Some(Self::Exhaustive),
            "lfsr" => Some(Self::Lfsr),
            "random" => Some(Self::Random),
            _ => None,
        }
    }

    /// Lowers to the session-level [`PatternSpec`].
    pub fn to_spec(self, count: usize) -> PatternSpec {
        match self {
            Self::Auto => PatternSpec::Auto,
            Self::Exhaustive => PatternSpec::Exhaustive,
            Self::Lfsr => PatternSpec::Lfsr { count },
            Self::Random => PatternSpec::Random { count },
        }
    }
}

/// One campaign request, fully resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRequest {
    /// Client-chosen id; names the report and event-stream files.
    pub id: String,
    /// Which paper design to debug.
    pub design: PaperDesign,
    /// Tile count for the implement step (artifact-key component).
    pub target_tiles: usize,
    /// Placer seed for the implement step (artifact-key component).
    pub impl_seed: u64,
    /// Localization strategy.
    pub strategy: StrategyKind,
    /// Physical flow.
    pub flow: FlowKind,
    /// Stimulus kind.
    pub patterns: PatternKind,
    /// Vector count for `lfsr` / `random` stimulus.
    pub pattern_count: usize,
    /// Session seed (stimulus + tie-breaks).
    pub seed: u64,
    /// Error budget: one planted error per seed.
    pub error_seeds: Vec<u64>,
    /// Run the §4.1 control-point confirmation step.
    pub confirm_with_control: bool,
    /// Test hook: panic inside the worker instead of running the
    /// campaign — exercises the orchestrator's drain-and-report path.
    pub inject_panic: bool,
}

impl Default for CampaignRequest {
    fn default() -> Self {
        Self {
            id: String::new(),
            design: PaperDesign::NineSym,
            target_tiles: 10,
            impl_seed: 41,
            strategy: StrategyKind::default(),
            flow: FlowKind::default(),
            patterns: PatternKind::default(),
            pattern_count: 512,
            seed: 7,
            error_seeds: vec![31],
            // The session default: run the §4.1 confirmation ECO.
            confirm_with_control: true,
            inject_panic: false,
        }
    }
}

/// Why a request was rejected at parse time.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError(pub String);

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad campaign request: {}", self.0)
    }
}

impl std::error::Error for RequestError {}

fn design_from_name(s: &str) -> Option<PaperDesign> {
    PaperDesign::ALL.into_iter().find(|d| d.name() == s)
}

impl CampaignRequest {
    /// Parses a request from its JSON text.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, missing `id`/`design`, and unknown
    /// enum names — with a message naming the offending field.
    pub fn from_json(text: &str) -> Result<Self, RequestError> {
        let v = json::parse(text).map_err(|e| RequestError(e.to_string()))?;
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| RequestError("missing \"id\"".into()))?
            .to_string();
        let design = v
            .get("design")
            .and_then(Value::as_str)
            .ok_or_else(|| RequestError("missing \"design\"".into()))?;
        let design = design_from_name(design)
            .ok_or_else(|| RequestError(format!("unknown design \"{design}\"")))?;
        let mut req = CampaignRequest {
            id,
            design,
            ..CampaignRequest::default()
        };
        if let Some(x) = v.get("target_tiles") {
            req.target_tiles = x.as_usize().filter(|&t| t >= 1).ok_or_else(|| {
                RequestError("\"target_tiles\" must be a positive integer".into())
            })?;
        }
        if let Some(x) = v.get("impl_seed") {
            req.impl_seed = x
                .as_u64()
                .ok_or_else(|| RequestError("\"impl_seed\" must be an integer".into()))?;
        }
        if let Some(x) = v.get("strategy") {
            let s = x
                .as_str()
                .ok_or_else(|| RequestError("\"strategy\" must be a string".into()))?;
            req.strategy = StrategyKind::from_name(s)
                .ok_or_else(|| RequestError(format!("unknown strategy \"{s}\"")))?;
        }
        if let Some(x) = v.get("flow") {
            let s = x
                .as_str()
                .ok_or_else(|| RequestError("\"flow\" must be a string".into()))?;
            req.flow = FlowKind::from_name(s)
                .ok_or_else(|| RequestError(format!("unknown flow \"{s}\"")))?;
        }
        if let Some(x) = v.get("patterns") {
            let s = x
                .as_str()
                .ok_or_else(|| RequestError("\"patterns\" must be a string".into()))?;
            req.patterns = PatternKind::from_name(s)
                .ok_or_else(|| RequestError(format!("unknown pattern kind \"{s}\"")))?;
        }
        if let Some(x) = v.get("pattern_count") {
            req.pattern_count = x.as_usize().filter(|&c| c >= 1).ok_or_else(|| {
                RequestError("\"pattern_count\" must be a positive integer".into())
            })?;
        }
        if let Some(x) = v.get("seed") {
            req.seed = x
                .as_u64()
                .ok_or_else(|| RequestError("\"seed\" must be an integer".into()))?;
        }
        if let Some(x) = v.get("error_seeds") {
            let arr = x
                .as_arr()
                .ok_or_else(|| RequestError("\"error_seeds\" must be an array".into()))?;
            req.error_seeds = arr
                .iter()
                .map(|e| {
                    e.as_u64().ok_or_else(|| {
                        RequestError("\"error_seeds\" entries must be integers".into())
                    })
                })
                .collect::<Result<_, _>>()?;
            if req.error_seeds.is_empty() {
                return Err(RequestError("\"error_seeds\" must not be empty".into()));
            }
        }
        if let Some(x) = v.get("confirm_with_control") {
            req.confirm_with_control = x
                .as_bool()
                .ok_or_else(|| RequestError("\"confirm_with_control\" must be a bool".into()))?;
        }
        if let Some(x) = v.get("inject_panic") {
            req.inject_panic = x
                .as_bool()
                .ok_or_else(|| RequestError("\"inject_panic\" must be a bool".into()))?;
        }
        Ok(req)
    }

    /// Semantic validation, run after parsing and before any worker
    /// is occupied: field *ranges* a well-formed request can still get
    /// wrong. Parse-time checks ([`Self::from_json`]) own shape and
    /// enum names; this owns what "in range" means for the service —
    /// a tile count the design's CLB budget cannot fill, a stimulus
    /// or error budget past the service caps.
    ///
    /// # Errors
    ///
    /// [`RequestError`] naming the offending field and bound.
    pub fn validate(&self) -> Result<(), RequestError> {
        // One tile per paper CLB is already degenerate; past it the
        // partitioner cannot even assign every tile a cell.
        let max_tiles = self.design.paper_clbs();
        if self.target_tiles == 0 || self.target_tiles > max_tiles {
            return Err(RequestError(format!(
                "\"target_tiles\" {} out of range 1..={max_tiles} for design \"{}\"",
                self.target_tiles,
                self.design.name()
            )));
        }
        const MAX_PATTERNS: usize = 1 << 16;
        if self.pattern_count == 0 || self.pattern_count > MAX_PATTERNS {
            return Err(RequestError(format!(
                "\"pattern_count\" {} out of range 1..={MAX_PATTERNS}",
                self.pattern_count
            )));
        }
        const MAX_ERRORS: usize = 64;
        if self.error_seeds.is_empty() || self.error_seeds.len() > MAX_ERRORS {
            return Err(RequestError(format!(
                "\"error_seeds\" carries {} seeds, allowed 1..={MAX_ERRORS}",
                self.error_seeds.len()
            )));
        }
        Ok(())
    }

    /// Renders the request back to protocol JSON (used when echoing
    /// the request into its report).
    pub fn to_json(&self) -> String {
        let seeds: Vec<String> = self.error_seeds.iter().map(u64::to_string).collect();
        format!(
            "{{\"id\": \"{}\", \"design\": \"{}\", \"target_tiles\": {}, \"impl_seed\": {}, \
             \"strategy\": \"{}\", \"flow\": \"{}\", \"patterns\": \"{}\", \"pattern_count\": {}, \
             \"seed\": {}, \"error_seeds\": [{}], \"confirm_with_control\": {}}}",
            json::escape(&self.id),
            json::escape(self.design.name()),
            self.target_tiles,
            self.impl_seed,
            self.strategy.name(),
            self.flow.name(),
            self.patterns.name(),
            self.pattern_count,
            self.seed,
            seeds.join(", "),
            self.confirm_with_control,
        )
    }

    /// The artifact identity this request implements against.
    pub fn artifact_key(&self) -> String {
        format!(
            "{}/t{}/s{}",
            self.design.name(),
            self.target_tiles,
            self.impl_seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_gets_defaults() {
        let r = CampaignRequest::from_json(r#"{"id": "a", "design": "9sym"}"#).unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.design, PaperDesign::NineSym);
        assert_eq!(r.error_seeds, vec![31]);
        assert_eq!(r.strategy, StrategyKind::LinearBatches);
        assert_eq!(r.flow, FlowKind::Tiled);
        assert!(!r.inject_panic);
    }

    #[test]
    fn full_request_round_trips() {
        let r = CampaignRequest {
            id: "styr-x".into(),
            design: PaperDesign::Styr,
            strategy: StrategyKind::BinarySearch,
            flow: FlowKind::QuickEco,
            patterns: PatternKind::Lfsr,
            pattern_count: 256,
            seed: 11,
            error_seeds: vec![31, 32, 33],
            confirm_with_control: true,
            ..Default::default()
        };
        let parsed = CampaignRequest::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn bad_requests_name_the_field() {
        let e = CampaignRequest::from_json(r#"{"design": "9sym"}"#).unwrap_err();
        assert!(e.0.contains("id"), "{e}");
        let e = CampaignRequest::from_json(r#"{"id": "a", "design": "nope"}"#).unwrap_err();
        assert!(e.0.contains("nope"), "{e}");
        let e = CampaignRequest::from_json(r#"{"id": "a", "design": "9sym", "flow": "warp"}"#)
            .unwrap_err();
        assert!(e.0.contains("warp"), "{e}");
        let e = CampaignRequest::from_json(r#"{"id": "a", "design": "9sym", "error_seeds": []}"#)
            .unwrap_err();
        assert!(e.0.contains("error_seeds"), "{e}");
    }
}

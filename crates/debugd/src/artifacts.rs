//! Shared, deduplicated design artifacts.
//!
//! `implement()` is the expensive step of any campaign — synthesis,
//! partitioning, annealed placement, PathFinder routing. Its output
//! is also exactly the state that is immutable across a debugging
//! campaign's *start points*: every campaign begins from the same
//! tiled design and golden netlist. The store therefore builds each
//! distinct (design, tiles, seed) artifact once and hands out
//! [`Arc`]s; campaigns clone the [`TiledDesign`] they mutate, and the
//! clone shares the hierarchy/device/RRG/tile-plan `Arc`s inside it —
//! so a thousand concurrent campaigns on one design carry one routing
//! graph between them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use netlist::Netlist;
use place::PlacerConfig;
use synth::PaperDesign;
use tiling::{implement, TiledDesign, TilingError, TilingOptions};

use crate::request::CampaignRequest;

/// One implemented design, shared read-only across campaigns.
#[derive(Debug)]
pub struct DesignArtifact {
    /// The design this artifact implements.
    pub design: PaperDesign,
    /// The tiled implementation campaigns start from.
    pub td: TiledDesign,
    /// The golden reference model (pre-injection netlist).
    pub golden: Netlist,
}

/// Channel width per design — denser designs need wider channels
/// (mirrors the bench harness so service campaigns and benchmark
/// sweeps implement identically).
fn tracks_for(design: PaperDesign) -> u16 {
    if design.paper_clbs() >= 200 {
        18
    } else {
        11
    }
}

/// The service-side implement options: 20% slack, deterministic
/// seeds — the same shape `bench-harness::experiment_options` uses,
/// so a campaign's artifact matches the corresponding benchmark run.
pub fn implement_options(design: PaperDesign, target_tiles: usize, seed: u64) -> TilingOptions {
    TilingOptions {
        overhead: 0.20,
        target_tiles,
        tracks: tracks_for(design),
        placer: PlacerConfig {
            seed,
            max_temps: 120,
            ..Default::default()
        },
        router: route::RouteOptions {
            max_iterations: 45,
            ..Default::default()
        },
        enforce_tile_slack: true,
        incremental_routing: true,
    }
}

/// Builds one artifact from scratch (no store involved).
///
/// # Errors
///
/// Propagates generation / implementation failures.
pub fn build_artifact(
    design: PaperDesign,
    target_tiles: usize,
    seed: u64,
) -> Result<DesignArtifact, TilingError> {
    let bundle = design.generate()?;
    let td = implement(
        bundle.netlist,
        bundle.hierarchy,
        implement_options(design, target_tiles, seed),
    )?;
    let golden = td.netlist.clone();
    Ok(DesignArtifact { design, td, golden })
}

/// Deduplicating artifact cache, safe to hit from every worker.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    map: Mutex<HashMap<String, Arc<DesignArtifact>>>,
    builds: AtomicUsize,
    hits: AtomicUsize,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The artifact a request runs against, building it on first use.
    ///
    /// Held under a store-wide lock for the duration of a build: the
    /// fleet's request batches are grouped by artifact anyway (see
    /// [`crate::orchestrator::run_batch`]), so serializing the rare
    /// build beats letting two workers implement the same design.
    ///
    /// # Errors
    ///
    /// Propagates implementation failures; failed builds are not
    /// cached, so a later request may retry.
    pub fn get_or_build(&self, req: &CampaignRequest) -> Result<Arc<DesignArtifact>, TilingError> {
        let key = req.artifact_key();
        let mut map = self.map.lock().expect("artifact store poisoned");
        if let Some(a) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(a));
        }
        let built = Arc::new(build_artifact(req.design, req.target_tiles, req.impl_seed)?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// (artifacts built, cache hits) so far.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.builds.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_dedups_by_design_tiles_seed() {
        let store = ArtifactStore::new();
        let a = CampaignRequest {
            id: "a".into(),
            ..Default::default()
        };
        let b = CampaignRequest {
            id: "b".into(),
            ..Default::default()
        };
        let mut c = a.clone();
        c.impl_seed += 1;
        let ra = store.get_or_build(&a).unwrap();
        let rb = store.get_or_build(&b).unwrap();
        let rc = store.get_or_build(&c).unwrap();
        assert!(Arc::ptr_eq(&ra, &rb), "same key must share one artifact");
        assert!(
            !Arc::ptr_eq(&ra, &rc),
            "different impl seed is a new artifact"
        );
        assert_eq!(store.stats(), (2, 1));
        // The campaign-side clone shares the immutable innards.
        let clone = ra.td.clone();
        assert!(Arc::ptr_eq(&clone.rrg, &ra.td.rrg));
        assert!(Arc::ptr_eq(&clone.plan, &ra.td.plan));
        assert!(Arc::ptr_eq(&clone.device, &ra.td.device));
    }
}

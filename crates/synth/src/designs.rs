//! Registry of the paper's nine evaluation designs.

use std::fmt;

use netlist::{Hierarchy, Netlist, NetlistError};

use crate::mapper::map_to_lut4_with_hierarchy;
use crate::{des, mcnc, mips};

/// One of the nine designs evaluated in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PaperDesign {
    /// 9-input symmetric function (combinational MCNC).
    NineSym,
    /// FSM controller (sequential MCNC).
    Styr,
    /// FSM controller (sequential MCNC).
    Sand,
    /// 32-bit error-correcting circuit (combinational MCNC).
    C499,
    /// FSM controller (sequential MCNC).
    Planet1,
    /// 8-bit ALU (combinational MCNC).
    C880,
    /// Large sequential ISCAS-89 circuit.
    S9234,
    /// BYU MIPS R2000 FPGA processor core.
    MipsR2000,
    /// Key-specific DES datapath.
    Des,
}

impl PaperDesign {
    /// All nine designs in Table 1 order (ascending CLB count).
    pub const ALL: [PaperDesign; 9] = [
        PaperDesign::NineSym,
        PaperDesign::Styr,
        PaperDesign::Sand,
        PaperDesign::C499,
        PaperDesign::Planet1,
        PaperDesign::C880,
        PaperDesign::S9234,
        PaperDesign::MipsR2000,
        PaperDesign::Des,
    ];

    /// The subset small enough for fast tests and examples.
    pub const SMALL: [PaperDesign; 7] = [
        PaperDesign::NineSym,
        PaperDesign::Styr,
        PaperDesign::Sand,
        PaperDesign::C499,
        PaperDesign::Planet1,
        PaperDesign::C880,
        PaperDesign::S9234,
    ];

    /// Table 1 name.
    pub fn name(self) -> &'static str {
        match self {
            Self::NineSym => "9sym",
            Self::Styr => "styr",
            Self::Sand => "sand",
            Self::C499 => "c499",
            Self::Planet1 => "planet1",
            Self::C880 => "c880",
            Self::S9234 => "s9234",
            Self::MipsR2000 => "MIPS R2000",
            Self::Des => "DES",
        }
    }

    /// The CLB count the paper reports for this design (Table 1).
    pub fn paper_clbs(self) -> usize {
        match self {
            Self::NineSym => 56,
            Self::Styr => 98,
            Self::Sand => 100,
            Self::C499 => 115,
            Self::Planet1 => 115,
            Self::C880 => 135,
            Self::S9234 => 235,
            Self::MipsR2000 => 900,
            Self::Des => 1050,
        }
    }

    /// Area overhead the paper reports after tiling (Table 1).
    pub fn paper_area_overhead(self) -> f64 {
        match self {
            Self::NineSym => 0.217,
            Self::Styr => 0.210,
            Self::Sand => 0.220,
            Self::C499 => 0.223,
            Self::Planet1 => 0.211,
            Self::C880 => 0.227,
            Self::S9234 => 0.205,
            Self::MipsR2000 => 0.190,
            Self::Des => 0.200,
        }
    }

    /// Timing overhead the paper reports after tiling (Table 1).
    pub fn paper_timing_overhead(self) -> f64 {
        match self {
            Self::NineSym => -0.045,
            Self::Styr => 0.074,
            Self::Sand => 0.129,
            Self::C499 => 0.000,
            Self::Planet1 => 0.137,
            Self::C880 => -0.055,
            Self::S9234 => -0.014,
            Self::MipsR2000 => 0.047,
            Self::Des => 0.036,
        }
    }

    /// True for designs containing flip-flops.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            Self::Styr | Self::Sand | Self::Planet1 | Self::S9234 | Self::MipsR2000
        )
    }

    /// Generates the design, mapped to 4-input LUTs.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors (none occur in practice;
    /// the generators are self-consistent).
    pub fn generate(self) -> Result<DesignBundle, NetlistError> {
        let (raw, hier) = match self {
            Self::NineSym => mcnc::nine_sym()?,
            Self::Styr => mcnc::styr()?,
            Self::Sand => mcnc::sand()?,
            Self::C499 => mcnc::c499()?,
            Self::Planet1 => mcnc::planet1()?,
            Self::C880 => mcnc::c880()?,
            Self::S9234 => mcnc::s9234()?,
            Self::MipsR2000 => mips::generate()?,
            Self::Des => des::generate(0x1334_5779_9BBC_DFF1, 8)?,
        };
        let (netlist, hierarchy) = map_to_lut4_with_hierarchy(&raw, &hier)?;
        netlist.validate()?;
        Ok(DesignBundle {
            design: self,
            netlist,
            hierarchy,
        })
    }
}

impl fmt::Display for PaperDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated, 4-LUT-mapped benchmark with its hierarchy.
#[derive(Debug, Clone)]
pub struct DesignBundle {
    /// Which paper design this is.
    pub design: PaperDesign,
    /// The mapped netlist.
    pub netlist: Netlist,
    /// Module hierarchy with back-annotation links.
    pub hierarchy: Hierarchy,
}

impl DesignBundle {
    /// CLBs this design occupies (XC4000 packing estimate).
    pub fn clbs(&self) -> usize {
        self.netlist.stats().clb_estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        assert_eq!(PaperDesign::ALL.len(), 9);
        let clbs: Vec<usize> = PaperDesign::ALL.iter().map(|d| d.paper_clbs()).collect();
        let mut sorted = clbs.clone();
        sorted.sort_unstable();
        assert_eq!(clbs, sorted);
    }

    #[test]
    fn small_designs_generate_on_target() {
        for d in [PaperDesign::NineSym, PaperDesign::Styr] {
            let bundle = d.generate().unwrap();
            let got = bundle.clbs();
            let target = d.paper_clbs();
            assert!(
                (target * 92 / 100..=target * 112 / 100).contains(&got),
                "{d}: {got} vs {target}"
            );
            assert_eq!(bundle.netlist.is_sequential(), d.is_sequential());
        }
    }

    #[test]
    fn names_match_table1() {
        assert_eq!(PaperDesign::S9234.to_string(), "s9234");
        assert_eq!(PaperDesign::MipsR2000.name(), "MIPS R2000");
    }
}

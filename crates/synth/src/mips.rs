//! MIPS R2000-style processor datapath (the paper's 900-CLB design).
//!
//! The paper's second large benchmark is a MIPS R2000 core for FPGAs
//! developed at BYU. This generator rebuilds the classic single-cycle
//! R2000 datapath structure: instruction register, register file, sign
//! extension, 32-bit ALU (add/sub/and/or/xor/slt), barrel shifter,
//! program counter with branch adder, and a control-decode cloud. The
//! register file is eight 32-bit registers (the FPGA core's register
//! file was similarly reduced), and a padding cloud calibrates the
//! mapped size to Table 1's 900 CLBs.

use netlist::{Hierarchy, NetId, Netlist, NetlistError};

use crate::builder::NetBuilder;
use crate::filler::{pad_to_lut_count, random_cloud, tie_off_unreachable};

const XLEN: usize = 32;
const NREGS: usize = 8;
const SEL_BITS: usize = 3;

/// Generates the MIPS R2000 datapath benchmark.
///
/// Primary inputs: `instr[0..32]` (instruction word) and
/// `din[0..32]` (load data); outputs: `result[0..32]`, `pc[0..32]`,
/// and `branch_taken`.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn generate() -> Result<(Netlist, Hierarchy), NetlistError> {
    let mut b = NetBuilder::new("mips_r2000");
    let instr_in = b.input_bus("instr", XLEN)?;
    let din = b.input_bus("din", XLEN)?;

    // ------------------------------------------------------------
    // Instruction register + field split
    // ------------------------------------------------------------
    b.enter_block("ifetch");
    let ir = b.register(&instr_in, 0)?;
    b.exit_to_root();
    let op = &ir[0..4];
    let rs = &ir[4..4 + SEL_BITS];
    let rt = &ir[7..7 + SEL_BITS];
    let rd = &ir[10..10 + SEL_BITS];
    let shamt = &ir[13..18];
    let imm = &ir[16..32];

    // ------------------------------------------------------------
    // Register file: 8 × 32, two read ports, one write port
    // ------------------------------------------------------------
    b.enter_block("regfile");
    // Register storage with placeholder D inputs; write-back is wired
    // after the ALU exists.
    let mut reg_q: Vec<Vec<NetId>> = Vec::with_capacity(NREGS);
    let mut reg_ff: Vec<Vec<netlist::CellId>> = Vec::with_capacity(NREGS);
    for _ in 0..NREGS {
        let mut qbits = Vec::with_capacity(XLEN);
        let mut ffs = Vec::with_capacity(XLEN);
        for _ in 0..XLEN {
            let q = b.ff_loop(false, |_, q| Ok(q))?;
            ffs.push(b.netlist().net(q)?.driver.expect("ff drives q"));
            qbits.push(q);
        }
        reg_q.push(qbits);
        reg_ff.push(ffs);
    }
    // Read ports.
    let mut a_bus = Vec::with_capacity(XLEN);
    let mut b_bus = Vec::with_capacity(XLEN);
    for bit in 0..XLEN {
        let column: Vec<NetId> = (0..NREGS).map(|r| reg_q[r][bit]).collect();
        a_bus.push(b.mux_n(&column, rs)?);
        b_bus.push(b.mux_n(&column, rt)?);
    }
    // Write decoder.
    let mut wdec = Vec::with_capacity(NREGS);
    for r in 0..NREGS {
        wdec.push(b.equals_const(rd, r as u64)?);
    }
    b.exit_to_root();

    // ------------------------------------------------------------
    // Sign extension and operand select
    // ------------------------------------------------------------
    b.enter_block("signext");
    let sign = imm[15];
    let mut imm_ext: Vec<NetId> = imm.to_vec();
    imm_ext.extend(std::iter::repeat_n(sign, XLEN - imm.len()));
    // op[3] selects immediate addressing.
    let use_imm = op[3];
    let mut opb = Vec::with_capacity(XLEN);
    for i in 0..XLEN {
        opb.push(b.mux2(b_bus[i], imm_ext[i], use_imm)?);
    }
    b.exit_to_root();

    // ------------------------------------------------------------
    // ALU: add, sub, and, or, xor, slt, shift, pass-din
    // ------------------------------------------------------------
    b.enter_block("alu");
    let sub = op[2];
    let mut b_xor = Vec::with_capacity(XLEN);
    for i in 0..XLEN {
        b_xor.push(b.xor2(opb[i], sub)?);
    }
    let (sum, _cout) = b.ripple_adder(&a_bus, &b_xor, Some(sub))?;
    let mut and_bus = Vec::with_capacity(XLEN);
    let mut or_bus = Vec::with_capacity(XLEN);
    let mut xor_bus = Vec::with_capacity(XLEN);
    for i in 0..XLEN {
        and_bus.push(b.and2(a_bus[i], opb[i])?);
        or_bus.push(b.or2(a_bus[i], opb[i])?);
        xor_bus.push(b.xor2(a_bus[i], opb[i])?);
    }
    // slt: sign bit of the subtraction, zero-extended.
    let zero = b.constant(false)?;
    let mut slt_bus = [zero; XLEN];
    slt_bus[0] = sum[XLEN - 1];
    b.exit_to_root();

    // ------------------------------------------------------------
    // Barrel shifter (logical left, 5 stages)
    // ------------------------------------------------------------
    b.enter_block("shifter");
    let mut shifted: Vec<NetId> = a_bus.clone();
    for (stage, &sel) in shamt.iter().enumerate() {
        let amount = 1usize << stage;
        let mut next = Vec::with_capacity(XLEN);
        for i in 0..XLEN {
            let moved = if i >= amount {
                shifted[i - amount]
            } else {
                zero
            };
            next.push(b.mux2(shifted[i], moved, sel)?);
        }
        shifted = next;
    }
    b.exit_to_root();

    // ------------------------------------------------------------
    // Result mux + write-back
    // ------------------------------------------------------------
    b.enter_block("writeback");
    let mut result = Vec::with_capacity(XLEN);
    for i in 0..XLEN {
        let choices = [
            sum[i], and_bus[i], or_bus[i], xor_bus[i], slt_bus[i], shifted[i], din[i], b_bus[i],
        ];
        result.push(b.mux_n(&choices, &op[0..3])?);
    }
    // Write enable: any op except the reserved 0b1111 store encoding.
    let all_ones = b.and_tree(op)?;
    let we = b.not(all_ones)?;
    for r in 0..NREGS {
        let we_r = b.and2(wdec[r], we)?;
        for bit in 0..XLEN {
            let d = b.mux2(reg_q[r][bit], result[bit], we_r)?;
            let ff = reg_ff[r][bit];
            b.netlist_mut().set_pin(ff, 0, d)?;
        }
    }
    b.exit_to_root();

    // ------------------------------------------------------------
    // PC unit: +1 or branch target
    // ------------------------------------------------------------
    b.enter_block("pc");
    let zero_flag = {
        let inverted: Vec<NetId> = result
            .iter()
            .map(|&n| b.not(n))
            .collect::<Result<Vec<_>, _>>()?;
        b.and_tree(&inverted)?
    };
    let is_branch = b.equals_const(op, 0b0110)?;
    let take = b.and2(is_branch, zero_flag)?;
    // PC register with combinational next-PC logic.
    let mut pc_ff = Vec::with_capacity(XLEN);
    let mut pc_q = Vec::with_capacity(XLEN);
    for _ in 0..XLEN {
        let q = b.ff_loop(false, |_, q| Ok(q))?;
        pc_ff.push(b.netlist().net(q)?.driver.expect("ff drives q"));
        pc_q.push(q);
    }
    let one = b.constant(true)?;
    let mut one_bus = vec![zero; XLEN];
    one_bus[0] = one;
    let (pc_inc, _) = b.ripple_adder(&pc_q, &one_bus, None)?;
    let (pc_br, _) = b.ripple_adder(&pc_q, &imm_ext, None)?;
    for i in 0..XLEN {
        let next = b.mux2(pc_inc[i], pc_br[i], take)?;
        b.netlist_mut().set_pin(pc_ff[i], 0, next)?;
    }
    b.exit_to_root();

    // ------------------------------------------------------------
    // Control cloud (models the R2000's main + local decoders)
    // ------------------------------------------------------------
    b.enter_block("control");
    let ctrl = random_cloud(&mut b, 0x2000, &ir, 60, 8)?;
    b.exit_to_root();

    b.output_bus("result", &result)?;
    b.output_bus("pc", &pc_q)?;
    b.output("branch_taken", take)?;
    b.output_bus("ctrl", &ctrl)?;

    // ------------------------------------------------------------
    // Calibration to the paper's 900 CLBs (1800 LUTs)
    // ------------------------------------------------------------
    b.enter_block("pad");
    let mut seeds = a_bus.clone();
    seeds.extend(&b_bus);
    seeds.extend(&ir);
    pad_to_lut_count(&mut b, 0x3000, 1800, &seeds)?;
    b.exit_to_root();
    tie_off_unreachable(&mut b)?;

    let (nl, h) = b.finish();
    nl.validate()?;
    Ok((nl, h))
}

/// Total architectural register bits of the generated core (register
/// file + PC + instruction register); used by structural tests.
pub fn expected_register_bits() -> usize {
    NREGS * XLEN + 2 * XLEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_and_size() {
        let (nl, _) = generate().unwrap();
        assert_eq!(nl.num_ffs(), expected_register_bits());
        let clbs = nl.stats().clb_estimate();
        assert!((830..=1000).contains(&clbs), "got {clbs} CLBs vs paper 900");
    }

    #[test]
    fn deterministic() {
        let a = netlist::blif::write(&generate().unwrap().0);
        let b = netlist::blif::write(&generate().unwrap().0);
        assert_eq!(a, b);
    }

    #[test]
    fn has_expected_functional_blocks() {
        let (_, h) = generate().unwrap();
        let mut names = Vec::new();
        for node in h.iter() {
            names.push(h.path(node).unwrap());
        }
        for blk in ["regfile", "alu", "pc", "shifter", "control", "writeback"] {
            assert!(
                names.iter().any(|n| n == &format!("mips_r2000/{blk}")),
                "missing block {blk}"
            );
        }
    }

    #[test]
    fn luts_are_mappable_without_decomposition() {
        let (nl, _) = generate().unwrap();
        assert!(nl
            .cells()
            .all(|(_, c)| c.lut_function().is_none_or(|t| t.arity() <= 4)));
    }
}

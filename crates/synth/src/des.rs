//! Key-specific DES datapath generator (the paper's 1050-CLB design).
//!
//! The paper's DES benchmark comes from Leonard & Mangione-Smith's
//! *key-specific* DES study \[8\]: the key schedule is evaluated at
//! compile time and folded into the hardware, so each round's S-boxes
//! become fixed 6-input functions `S'(x) = S(x ⊕ k_round)` and the
//! per-round key XOR gates disappear.
//!
//! [`generate`] emits an `R`-round key-specific datapath as a netlist
//! of 6-input S-box LUTs (lowered to 4-LUT trees by the mapper) plus
//! the Feistel XORs. Eight rounds land on the paper's 1050 CLBs; the
//! full 16-round variant is available for functional validation
//! against the FIPS-46 test vectors via [`reference_encrypt`].

use netlist::{Hierarchy, NetId, Netlist, NetlistError, TruthTable};

use crate::builder::NetBuilder;

/// Initial permutation (spec bit numbering, 1-based, MSB-first).
pub const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, //
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8, //
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, //
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (inverse of [`IP`]).
pub const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, //
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29, //
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27, //
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion E: 32 → 48 bits.
pub const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, //
    12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25, //
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// P permutation within the round function.
pub const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, //
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
];

/// Key permuted choice 1: 64 → 56 bits.
pub const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, //
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36, //
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, //
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
];

/// Key permuted choice 2: 56 → 48 bits.
pub const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, //
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, //
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48, //
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Per-round left-rotate amounts of the key halves.
pub const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight S-boxes, indexed `[box][row][col]`.
pub const SBOX: [[[u8; 16]; 4]; 8] = [
    [
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    [
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    [
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    [
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    [
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    [
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    [
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    [
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
];

// ---------------------------------------------------------------------
// Bit-level helpers on u64 (spec bit 1 = MSB)
// ---------------------------------------------------------------------

fn get_bit(value: u64, width: u32, spec_pos: u8) -> bool {
    debug_assert!(spec_pos as u32 >= 1 && spec_pos as u32 <= width);
    value >> (width - spec_pos as u32) & 1 == 1
}

fn permute(value: u64, in_width: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out = out << 1 | u64::from(get_bit(value, in_width, src));
    }
    out
}

/// S-box lookup on a 6-bit group value (spec convention: bits 1 and 6
/// select the row, bits 2..5 the column).
fn sbox_lookup(box_idx: usize, x6: u8) -> u8 {
    let row = ((x6 >> 4) & 0b10 | x6 & 1) as usize;
    let col = ((x6 >> 1) & 0xF) as usize;
    SBOX[box_idx][row][col]
}

/// Computes the 16 round keys of 48 bits each.
pub fn round_keys(key: u64) -> [u64; 16] {
    let cd = permute(key, 64, &PC1);
    let mut c = (cd >> 28) & 0x0FFF_FFFF;
    let mut d = cd & 0x0FFF_FFFF;
    let rot28 = |v: u64, by: u8| ((v << by) | (v >> (28 - by))) & 0x0FFF_FFFF;
    let mut keys = [0u64; 16];
    for (r, &s) in SHIFTS.iter().enumerate() {
        c = rot28(c, s);
        d = rot28(d, s);
        keys[r] = permute(c << 28 | d, 56, &PC2);
    }
    keys
}

/// The Feistel round function `f(R, k)`.
fn feistel(r: u64, k48: u64) -> u64 {
    let x = permute(r, 32, &E) ^ k48;
    let mut s_out = 0u64;
    for g in 0..8 {
        let group = ((x >> (42 - 6 * g)) & 0x3F) as u8;
        s_out = s_out << 4 | u64::from(sbox_lookup(g, group));
    }
    permute(s_out, 32, &P)
}

/// Software reference encryption with a configurable round count.
///
/// With `rounds = 16` this is standard single-DES (IP, 16 Feistel
/// rounds, swap, FP). Fewer rounds follow the same structure and are
/// what the hardware generator uses for the paper-sized benchmark.
pub fn reference_encrypt(plaintext: u64, key: u64, rounds: usize) -> u64 {
    assert!((1..=16).contains(&rounds), "rounds must be 1..=16");
    let keys = round_keys(key);
    let ip = permute(plaintext, 64, &IP);
    let mut l = ip >> 32;
    let mut r = ip & 0xFFFF_FFFF;
    for &k in keys.iter().take(rounds) {
        let new_r = l ^ feistel(r, k);
        l = r;
        r = new_r;
    }
    // Pre-output block is R||L (the final swap).
    permute(r << 32 | l, 64, &FP)
}

// ---------------------------------------------------------------------
// Hardware generator
// ---------------------------------------------------------------------

/// Generates an `rounds`-round key-specific DES datapath.
///
/// Primary inputs `pt[0..64]` and outputs `ct[0..64]` use spec-order
/// indexing: index `i` carries spec bit `i + 1` (the block's MSB is
/// index 0). Each round is its own functional block in the hierarchy.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if `rounds` is outside `1..=16`.
pub fn generate(key: u64, rounds: usize) -> Result<(Netlist, Hierarchy), NetlistError> {
    assert!((1..=16).contains(&rounds), "rounds must be 1..=16");
    let keys = round_keys(key);
    let mut b = NetBuilder::new("des");
    let pt: Vec<NetId> = (0..64)
        .map(|i| b.input(format!("pt[{i}]")))
        .collect::<Result<_, _>>()?;

    // IP is pure wiring.
    let ip: Vec<NetId> = IP.iter().map(|&src| pt[src as usize - 1]).collect();
    let mut l: Vec<NetId> = ip[..32].to_vec();
    let mut r: Vec<NetId> = ip[32..].to_vec();

    for round in 0..rounds {
        b.enter_block(format!("round{round}"));
        let k = keys[round];
        // Expansion is wiring.
        let e: Vec<NetId> = E.iter().map(|&src| r[src as usize - 1]).collect();
        // Key-specific S-boxes: S'(x) = S(x ^ k_group).
        let mut s_out = Vec::with_capacity(32);
        for g in 0..8 {
            let group_key = ((k >> (42 - 6 * g)) & 0x3F) as u8;
            let ins: Vec<NetId> = e[6 * g..6 * g + 6].to_vec();
            for bit in 0..4 {
                // Truth-table var v corresponds to input pin v, which
                // carries spec bit v+1 of the group (MSB first).
                let tt = TruthTable::from_fn(6, |row| {
                    let mut x = 0u8;
                    for v in 0..6 {
                        if row >> v & 1 == 1 {
                            x |= 1 << (5 - v); // var 0 is the group MSB
                        }
                    }
                    let s = sbox_lookup(g, x ^ group_key);
                    s >> (3 - bit) & 1 == 1
                });
                s_out.push(b.lut(tt, &ins)?);
            }
        }
        // P permutation is wiring; Feistel XOR costs 32 LUTs.
        let f: Vec<NetId> = P.iter().map(|&src| s_out[src as usize - 1]).collect();
        let mut new_r = Vec::with_capacity(32);
        for i in 0..32 {
            new_r.push(b.xor2(l[i], f[i])?);
        }
        l = r;
        r = new_r;
        b.exit_to_root();
    }

    // Final swap + FP wiring.
    let mut preout = r.clone();
    preout.extend(&l);
    let ct: Vec<NetId> = FP.iter().map(|&src| preout[src as usize - 1]).collect();
    b.output_bus("ct", &ct)?;
    crate::filler::tie_off_unreachable(&mut b)?;

    let (nl, h) = b.finish();
    nl.validate()?;
    Ok((nl, h))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_fips_vector() {
        // Classic worked example (Stallings / FIPS-46).
        let ct = reference_encrypt(0x0123_4567_89AB_CDEF, 0x1334_5779_9BBC_DFF1, 16);
        assert_eq!(ct, 0x85E8_1354_0F0A_B405);
    }

    #[test]
    fn reference_matches_zero_key_vector() {
        let ct = reference_encrypt(0, 0, 16);
        assert_eq!(ct, 0x8CA6_4DE9_C1B1_23A7);
    }

    #[test]
    fn round_keys_are_48_bit() {
        for k in round_keys(0x1334_5779_9BBC_DFF1) {
            assert_eq!(k >> 48, 0);
        }
        // First round key of the classic example.
        assert_eq!(
            round_keys(0x1334_5779_9BBC_DFF1)[0],
            0b000110_110000_001011_101111_111111_000111_000001_110010
        );
    }

    fn eval_circuit(nl: &Netlist, pt: u64) -> u64 {
        let mut values = std::collections::HashMap::new();
        for &pi in &nl.primary_inputs() {
            let name = nl.cell(pi).unwrap().name.clone();
            let idx: usize = name
                .strip_prefix("pt[")
                .unwrap()
                .trim_end_matches(']')
                .parse()
                .unwrap();
            let net = nl.cell_output(pi).unwrap();
            values.insert(net, pt >> (63 - idx) & 1 == 1);
        }
        for id in nl.topo_order().unwrap() {
            let cell = nl.cell(id).unwrap();
            if let Some(tt) = cell.lut_function() {
                let ins: Vec<bool> = cell.inputs.iter().map(|n| values[n]).collect();
                values.insert(cell.output.unwrap(), tt.eval(&ins));
            }
        }
        let mut ct = 0u64;
        for i in 0..64 {
            let po = nl.find_cell(&format!("ct[{i}]")).unwrap();
            let v = values[&nl.cell(po).unwrap().inputs[0]];
            ct |= u64::from(v) << (63 - i);
        }
        ct
    }

    #[test]
    fn circuit_matches_reference_two_rounds() {
        let key = 0x1334_5779_9BBC_DFF1;
        let (nl, _) = generate(key, 2).unwrap();
        for pt in [
            0u64,
            0x0123_4567_89AB_CDEF,
            0xFFFF_FFFF_FFFF_FFFF,
            0xA5A5_5A5A_DEAD_BEEF,
        ] {
            assert_eq!(
                eval_circuit(&nl, pt),
                reference_encrypt(pt, key, 2),
                "pt={pt:#x}"
            );
        }
    }

    #[test]
    fn full_des_circuit_matches_fips_vector() {
        let key = 0x1334_5779_9BBC_DFF1;
        let (nl, _) = generate(key, 16).unwrap();
        assert_eq!(
            eval_circuit(&nl, 0x0123_4567_89AB_CDEF),
            0x85E8_1354_0F0A_B405
        );
    }

    #[test]
    fn paper_size_lands_after_mapping() {
        let (nl, h) = generate(0x1334_5779_9BBC_DFF1, 8).unwrap();
        let (mapped, _) = crate::mapper::map_to_lut4_with_hierarchy(&nl, &h).unwrap();
        let clbs = mapped.stats().clb_estimate();
        // Paper: 1050 CLBs. 8 rounds × (32 S-box 6-LUTs → ≤7 LUTs each
        // + 32 XORs) ≈ 2048 LUTs ≈ 1024 CLBs.
        assert!((950..=1120).contains(&clbs), "got {clbs} CLBs");
    }

    #[test]
    fn rounds_are_separate_blocks() {
        let (nl, h) = generate(0, 2).unwrap();
        let some_lut = nl
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .unwrap()
            .0;
        let blk = h.functional_block_of(some_lut).unwrap();
        assert!(h.name(blk).unwrap().starts_with("round"));
    }
}

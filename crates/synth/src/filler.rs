//! Random-logic padding used to calibrate generated benchmarks to the
//! paper's mapped sizes.
//!
//! Real MCNC circuits pushed through a 1990s synthesis flow carry
//! substantial mapping redundancy; our structural cores are leaner. To
//! make Table 1's `# CLBs` column comparable, each generator pads its
//! core with a deterministic pseudo-random LUT cloud that consumes
//! existing signals (so connectivity stays realistic) and feeds
//! auxiliary outputs (so nothing dangles or sweeps away).

use netlist::{NetId, NetlistError, TruthTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::NetBuilder;

/// A random non-degenerate `arity`-input truth table.
///
/// The table is guaranteed to depend on every input, so padding logic
/// never collapses under support reduction.
pub fn random_lut(rng: &mut SmallRng, arity: usize) -> TruthTable {
    loop {
        let bits: u64 = rng.gen();
        let Ok(tt) = TruthTable::from_bits(arity, bits) else {
            continue;
        };
        if !tt.is_constant() && tt.support_size() == arity {
            return tt;
        }
    }
}

/// Appends random 4-LUT logic until the netlist holds `target_luts`
/// LUTs, then ties loose cones into `pad[k]` outputs.
///
/// `pool_seed` supplies the initial signals the cloud draws from
/// (typically the design's primary-input nets and a few internal
/// buses). Generation is fully determined by `seed`.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if `pool_seed` is empty.
pub fn pad_to_lut_count(
    b: &mut NetBuilder,
    seed: u64,
    target_luts: usize,
    pool_seed: &[NetId],
) -> Result<(), NetlistError> {
    assert!(!pool_seed.is_empty(), "padding needs seed signals");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<NetId> = pool_seed.to_vec();
    let mut loose: Vec<NetId> = Vec::new();
    while b.netlist().num_luts() < target_luts {
        let arity = match rng.gen_range(0..10u32) {
            0..=1 => 2,
            2..=4 => 3,
            _ => 4,
        };
        let mut ins = Vec::with_capacity(arity);
        // Bias toward recent nets for locality (shallow cone shapes).
        for _ in 0..arity {
            let idx = if rng.gen_bool(0.7) && pool.len() > 8 {
                rng.gen_range(pool.len().saturating_sub(24)..pool.len())
            } else {
                rng.gen_range(0..pool.len())
            };
            ins.push(pool[idx]);
        }
        ins.sort_unstable();
        ins.dedup();
        let tt = random_lut(&mut rng, ins.len());
        let out = b.lut(tt, &ins)?;
        pool.push(out);
        loose.push(out);
        // Periodically retire cones into the loose set only.
        if loose.len() > 64 {
            let y = b.xor_tree(&loose)?;
            pool.push(y);
            loose = vec![y];
        }
    }
    // Tie off what's left so validation and sweeps keep the cloud.
    if !loose.is_empty() {
        let mut k = 0;
        for chunk in loose.chunks(16) {
            let y = b.xor_tree(chunk)?;
            b.output(format!("pad[{k}]"), y)?;
            k += 1;
        }
    }
    Ok(())
}

/// Ties every logic cone that cannot reach a primary output into
/// auxiliary `deadpad[k]` outputs.
///
/// [`random_cloud`]'s output layer draws from only the deepest quarter
/// of its pool, so shallow cones (and state bits no cloud happened to
/// sample) would otherwise sweep away — exactly the dead logic the
/// DRC's unreachable-logic rule flags. Every generator calls this
/// once, right before `finish`, to restore the module invariant that
/// nothing dangles. XOR-folding keeps the added logic small (roughly a
/// third of the dead-net count) and the fold LUTs live in their own
/// `deadpad` hierarchy block.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn tie_off_unreachable(b: &mut NetBuilder) -> Result<(), NetlistError> {
    let dead: Vec<NetId> = {
        let nl = b.netlist();
        let mut reachable = vec![false; nl.cell_capacity()];
        for c in nl.fanin_cone(&nl.primary_outputs()) {
            if c.index() < reachable.len() {
                reachable[c.index()] = true;
            }
        }
        nl.cells()
            .filter(|(id, c)| c.is_logic() && !reachable[id.index()])
            .filter_map(|(_, c)| c.output)
            .collect()
    };
    if dead.is_empty() {
        return Ok(());
    }
    b.enter_block("deadpad");
    let mut folds = Vec::new();
    for chunk in dead.chunks(16) {
        folds.push(b.xor_tree(chunk)?);
    }
    b.exit_to_root();
    for (k, y) in folds.into_iter().enumerate() {
        b.output(format!("deadpad[{k}]"), y)?;
    }
    Ok(())
}

/// Builds a layered random combinational cloud.
///
/// Produces `outputs` nets computed from `inputs` through roughly
/// `luts` random 4-LUTs arranged in locality-biased layers. Used for
/// FSM next-state/output logic.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if `inputs` is empty or `outputs` is zero.
pub fn random_cloud(
    b: &mut NetBuilder,
    seed: u64,
    inputs: &[NetId],
    luts: usize,
    outputs: usize,
) -> Result<Vec<NetId>, NetlistError> {
    assert!(!inputs.is_empty(), "cloud needs inputs");
    assert!(outputs > 0, "cloud needs at least one output");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<NetId> = inputs.to_vec();
    let body = luts.saturating_sub(outputs).max(1);
    for _ in 0..body {
        let arity = rng.gen_range(2..=4usize);
        let mut ins = Vec::with_capacity(arity);
        for _ in 0..arity {
            ins.push(pool[rng.gen_range(0..pool.len())]);
        }
        ins.sort_unstable();
        ins.dedup();
        let tt = random_lut(&mut rng, ins.len());
        pool.push(b.lut(tt, &ins)?);
    }
    // Output layer draws from the deepest quarter of the pool.
    let lo = pool.len().saturating_sub((pool.len() / 4).max(4));
    let mut outs = Vec::with_capacity(outputs);
    for _ in 0..outputs {
        let mut ins = Vec::new();
        for _ in 0..4usize {
            ins.push(pool[rng.gen_range(lo..pool.len())]);
        }
        ins.sort_unstable();
        ins.dedup();
        let tt = random_lut(&mut rng, ins.len());
        outs.push(b.lut(tt, &ins)?);
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_lut_has_full_support() {
        let mut rng = SmallRng::seed_from_u64(7);
        for arity in 1..=4 {
            let tt = random_lut(&mut rng, arity);
            assert_eq!(tt.support_size(), arity);
        }
    }

    #[test]
    fn padding_hits_target() {
        let mut b = NetBuilder::new("pad");
        let ins = b.input_bus("i", 8).unwrap();
        pad_to_lut_count(&mut b, 42, 150, &ins).unwrap();
        let (nl, _) = b.finish();
        nl.validate().unwrap();
        assert!(nl.num_luts() >= 150);
        assert!(nl.num_luts() < 150 + 40, "tie-off overhead bounded");
    }

    #[test]
    fn padding_is_deterministic() {
        let build = || {
            let mut b = NetBuilder::new("pad");
            let ins = b.input_bus("i", 8).unwrap();
            pad_to_lut_count(&mut b, 9, 60, &ins).unwrap();
            let (nl, _) = b.finish();
            netlist::blif::write(&nl)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn cloud_counts() {
        let mut b = NetBuilder::new("cloud");
        let ins = b.input_bus("i", 10).unwrap();
        let outs = random_cloud(&mut b, 3, &ins, 80, 12).unwrap();
        assert_eq!(outs.len(), 12);
        let (nl, _) = b.finish();
        nl.validate().unwrap();
        let total = nl.num_luts();
        assert!((80..=95).contains(&total), "got {total}");
    }
}

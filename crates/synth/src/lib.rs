//! Front end: benchmark generation and technology mapping.
//!
//! The paper evaluates nine designs: seven MCNC benchmarks (9sym, styr,
//! sand, c499, planet1, c880, s9234), a BYU MIPS R2000 FPGA core, and a
//! key-specific DES datapath. None of those artifacts are
//! redistributable here, so [`designs`] regenerates each one as a
//! structural netlist of the same *kind* (symmetric function, FSM,
//! error-correcting XOR network, ALU, processor datapath, cipher
//! rounds) calibrated to the paper's mapped CLB count (Table 1).
//!
//! [`mapper`] lowers any netlist containing up-to-6-input logic
//! functions onto the XC4000's 4-input LUTs by Shannon decomposition,
//! and [`builder::NetBuilder`] is the structural construction kit the
//! generators are written with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod des;
pub mod designs;
pub mod filler;
pub mod fsm;
pub mod mapper;
pub mod mcnc;
pub mod mips;

pub use builder::NetBuilder;
pub use designs::{DesignBundle, PaperDesign};
pub use mapper::{map_to_lut4, sweep_buffers};

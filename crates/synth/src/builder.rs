//! Structural netlist construction kit.
//!
//! [`NetBuilder`] wraps a [`Netlist`] plus its [`Hierarchy`] and offers
//! the datapath idioms the benchmark generators are written in: buses,
//! gates, adders, muxes, registers, and comparators. Every emitted
//! cell is assigned to the builder's *current hierarchy scope*, so the
//! generated designs carry a realistic module tree for back-annotation.

use netlist::{CellId, Hierarchy, HierarchyNodeId, NetId, Netlist, NetlistError, TruthTable};

/// Incremental builder for structural netlists.
///
/// ```
/// use synth::NetBuilder;
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut b = NetBuilder::new("adder4");
/// let a = b.input_bus("a", 4)?;
/// let c = b.input_bus("b", 4)?;
/// let (sum, carry) = b.ripple_adder(&a, &c, None)?;
/// b.output_bus("sum", &sum)?;
/// b.output("cout", carry)?;
/// let (nl, _h) = b.finish();
/// assert_eq!(nl.primary_outputs().len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetBuilder {
    nl: Netlist,
    hier: Hierarchy,
    scope: HierarchyNodeId,
    unique: u64,
}

impl NetBuilder {
    /// Starts a new design.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let hier = Hierarchy::new(name.clone());
        let scope = hier.root();
        Self {
            nl: Netlist::new(name),
            hier,
            scope,
            unique: 0,
        }
    }

    /// Consumes the builder, returning the netlist and hierarchy.
    pub fn finish(self) -> (Netlist, Hierarchy) {
        (self.nl, self.hier)
    }

    /// Read access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Mutable access for edits the builder has no idiom for (e.g.
    /// closing multi-bit feedback loops).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.nl
    }

    /// Enters a child module scope; emitted cells belong to it.
    pub fn enter(&mut self, name: impl Into<String>) -> HierarchyNodeId {
        self.scope = self.hier.add_child(self.scope, name);
        self.scope
    }

    /// Enters a child of the *root* (a functional block).
    pub fn enter_block(&mut self, name: impl Into<String>) -> HierarchyNodeId {
        let root = self.hier.root();
        self.scope = self.hier.add_child(root, name);
        self.scope
    }

    /// Returns to the root scope.
    pub fn exit_to_root(&mut self) {
        self.scope = self.hier.root();
    }

    fn fresh(&mut self, stem: &str) -> String {
        self.unique += 1;
        format!("{stem}_{}", self.unique)
    }

    fn track(&mut self, cell: CellId) -> CellId {
        self.hier.assign_cell(self.scope, cell);
        cell
    }

    // ----------------------------------------------------------------
    // Ports
    // ----------------------------------------------------------------

    /// Adds one primary input and returns its net.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn input(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let id = self.nl.add_input(name)?;
        self.track(id);
        self.nl.cell_output(id)
    }

    /// Adds `width` primary inputs named `name[i]`, LSB first.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Result<Vec<NetId>, NetlistError> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Adds one primary output consuming `net`.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) -> Result<CellId, NetlistError> {
        let id = self.nl.add_output(name, net)?;
        Ok(self.track(id))
    }

    /// Adds primary outputs `name[i]` for each net, LSB first.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn output_bus(&mut self, name: &str, nets: &[NetId]) -> Result<(), NetlistError> {
        for (i, &n) in nets.iter().enumerate() {
            self.output(format!("{name}[{i}]"), n)?;
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Combinational primitives
    // ----------------------------------------------------------------

    /// Emits a LUT computing `function` of `inputs`.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors (arity mismatch etc.).
    pub fn lut(&mut self, function: TruthTable, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        let name = self.fresh("u");
        let id = self.nl.add_lut(name, function, inputs)?;
        self.track(id);
        self.nl.cell_output(id)
    }

    /// Constant 0 or 1 (a zero-input LUT).
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn constant(&mut self, value: bool) -> Result<NetId, NetlistError> {
        let tt = if value {
            TruthTable::constant1(0)
        } else {
            TruthTable::constant0(0)
        };
        self.lut(tt, &[])
    }

    /// Two-input AND.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn and2(&mut self, a: NetId, b: NetId) -> Result<NetId, NetlistError> {
        self.lut(TruthTable::and(2), &[a, b])
    }

    /// Two-input OR.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn or2(&mut self, a: NetId, b: NetId) -> Result<NetId, NetlistError> {
        self.lut(TruthTable::or(2), &[a, b])
    }

    /// Two-input XOR.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> Result<NetId, NetlistError> {
        self.lut(TruthTable::xor(2), &[a, b])
    }

    /// Inverter.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn not(&mut self, a: NetId) -> Result<NetId, NetlistError> {
        self.lut(TruthTable::not(), &[a])
    }

    /// 2:1 mux (`sel ? b : a`).
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn mux2(&mut self, a: NetId, b: NetId, sel: NetId) -> Result<NetId, NetlistError> {
        self.lut(TruthTable::mux2(), &[a, b, sel])
    }

    /// Balanced XOR tree over any number of nets (≥1).
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    ///
    /// # Panics
    ///
    /// Panics on an empty input slice.
    pub fn xor_tree(&mut self, nets: &[NetId]) -> Result<NetId, NetlistError> {
        assert!(!nets.is_empty(), "xor tree needs at least one input");
        let mut layer: Vec<NetId> = nets.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(4));
            for chunk in layer.chunks(4) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(self.lut(TruthTable::xor(chunk.len()), chunk)?);
                }
            }
            layer = next;
        }
        Ok(layer[0])
    }

    /// Wide AND via a tree of 4-input LUTs.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    ///
    /// # Panics
    ///
    /// Panics on an empty input slice.
    pub fn and_tree(&mut self, nets: &[NetId]) -> Result<NetId, NetlistError> {
        assert!(!nets.is_empty(), "and tree needs at least one input");
        let mut layer: Vec<NetId> = nets.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(4));
            for chunk in layer.chunks(4) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(self.lut(TruthTable::and(chunk.len()), chunk)?);
                }
            }
            layer = next;
        }
        Ok(layer[0])
    }

    /// Full adder; returns `(sum, carry_out)`.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn full_adder(
        &mut self,
        a: NetId,
        b: NetId,
        cin: NetId,
    ) -> Result<(NetId, NetId), NetlistError> {
        let sum = self.lut(TruthTable::xor(3), &[a, b, cin])?;
        let carry = self.lut(TruthTable::maj3(), &[a, b, cin])?;
        Ok((sum, carry))
    }

    /// Ripple-carry adder over two equal-width buses.
    ///
    /// Returns `(sum_bus, carry_out)`.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width or are empty.
    pub fn ripple_adder(
        &mut self,
        a: &[NetId],
        b: &[NetId],
        cin: Option<NetId>,
    ) -> Result<(Vec<NetId>, NetId), NetlistError> {
        assert_eq!(a.len(), b.len(), "adder bus width mismatch");
        assert!(!a.is_empty(), "adder needs at least one bit");
        let mut carry = match cin {
            Some(c) => c,
            None => self.constant(false)?,
        };
        let mut sum = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry)?;
            sum.push(s);
            carry = c;
        }
        Ok((sum, carry))
    }

    /// N:1 mux over a power-of-two input bus using select bits.
    ///
    /// `inputs.len()` must equal `2^select.len()`.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch.
    pub fn mux_n(&mut self, inputs: &[NetId], select: &[NetId]) -> Result<NetId, NetlistError> {
        assert_eq!(inputs.len(), 1usize << select.len(), "mux width mismatch");
        let mut layer: Vec<NetId> = inputs.to_vec();
        for &s in select {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                next.push(self.mux2(pair[0], pair[1], s)?);
            }
            layer = next;
        }
        Ok(layer[0])
    }

    /// Equality comparator between a bus and a constant.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn equals_const(&mut self, bus: &[NetId], value: u64) -> Result<NetId, NetlistError> {
        let mut conds = Vec::with_capacity(bus.len());
        for (i, &bit) in bus.iter().enumerate() {
            if value >> i & 1 == 1 {
                conds.push(bit);
            } else {
                conds.push(self.not(bit)?);
            }
        }
        self.and_tree(&conds)
    }

    /// Population counter: returns a `ceil(log2(n+1))`-bit count of set
    /// inputs, LSB first, built from full-adder reduction.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    ///
    /// # Panics
    ///
    /// Panics on an empty input slice.
    pub fn popcount(&mut self, bits: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
        assert!(!bits.is_empty(), "popcount needs at least one input");
        // Column-compression: columns[i] holds nets of weight 2^i.
        let mut columns: Vec<Vec<NetId>> = vec![bits.to_vec()];
        loop {
            let mut changed = false;
            let mut next: Vec<Vec<NetId>> = vec![Vec::new(); columns.len() + 1];
            for (w, col) in columns.iter().enumerate() {
                let mut queue = col.clone();
                while queue.len() >= 3 {
                    let c = queue.pop().expect("len checked");
                    let b = queue.pop().expect("len checked");
                    let a = queue.pop().expect("len checked");
                    let (s, cy) = self.full_adder(a, b, c)?;
                    queue.push(s);
                    next[w + 1].push(cy);
                    changed = true;
                }
                next[w].extend(queue);
            }
            while next.last().is_some_and(Vec::is_empty) {
                next.pop();
            }
            columns = next;
            if !changed {
                break;
            }
        }
        // Any column still holding two nets needs a half-adder pass.
        loop {
            let mut pending = None;
            for (w, col) in columns.iter().enumerate() {
                if col.len() >= 2 {
                    pending = Some(w);
                    break;
                }
            }
            let Some(w) = pending else { break };
            let b = columns[w].pop().expect("len checked");
            let a = columns[w].pop().expect("len checked");
            let s = self.xor2(a, b)?;
            let c = self.and2(a, b)?;
            columns[w].push(s);
            if w + 1 >= columns.len() {
                columns.push(Vec::new());
            }
            columns[w + 1].push(c);
        }
        let mut out = Vec::with_capacity(columns.len());
        for col in &columns {
            match col.as_slice() {
                [] => out.push(self.constant(false)?),
                [one] => out.push(*one),
                _ => unreachable!("columns reduced to <= 1 net"),
            }
        }
        Ok(out)
    }

    // ----------------------------------------------------------------
    // Sequential primitives
    // ----------------------------------------------------------------

    /// D flip-flop.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn ff(&mut self, d: NetId, init: bool) -> Result<NetId, NetlistError> {
        let name = self.fresh("r");
        let id = self.nl.add_ff(name, init, d)?;
        self.track(id);
        self.nl.cell_output(id)
    }

    /// Register over a bus; returns the Q bus.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn register(&mut self, d: &[NetId], init: u64) -> Result<Vec<NetId>, NetlistError> {
        d.iter()
            .enumerate()
            .map(|(i, &n)| self.ff(n, init >> i & 1 == 1))
            .collect()
    }

    /// A flip-flop with feedback through caller-supplied logic.
    ///
    /// Creates the FF first (fed by a placeholder), hands its Q to
    /// `feedback` to compute the D input, then closes the loop.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn ff_loop(
        &mut self,
        init: bool,
        feedback: impl FnOnce(&mut Self, NetId) -> Result<NetId, NetlistError>,
    ) -> Result<NetId, NetlistError> {
        let seed_name = self.fresh("loop_seed");
        let seed = self.nl.add_net(seed_name)?;
        let ff_name = self.fresh("r");
        let ff = self.nl.add_ff(ff_name, init, seed)?;
        self.track(ff);
        let q = self.nl.cell_output(ff)?;
        let d = feedback(self, q)?;
        self.nl.set_pin(ff, 0, d)?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_structure() {
        let mut b = NetBuilder::new("add");
        let a = b.input_bus("a", 4).unwrap();
        let c = b.input_bus("b", 4).unwrap();
        let (sum, _cout) = b.ripple_adder(&a, &c, None).unwrap();
        b.output_bus("s", &sum).unwrap();
        let (nl, _) = b.finish();
        nl.validate().unwrap();
        // 4 full adders à 2 LUTs + constant = 9 cells.
        assert_eq!(nl.num_luts(), 9);
    }

    #[test]
    fn xor_tree_reduces_with_lut4() {
        let mut b = NetBuilder::new("x");
        let ins = b.input_bus("i", 16).unwrap();
        let y = b.xor_tree(&ins).unwrap();
        b.output("y", y).unwrap();
        let (nl, _) = b.finish();
        // 16 -> 4 -> 1: five 4-input XOR LUTs.
        assert_eq!(nl.num_luts(), 5);
        assert_eq!(nl.logic_depth().unwrap(), 2);
    }

    #[test]
    fn mux_n_selects() {
        let mut b = NetBuilder::new("m");
        let ins = b.input_bus("i", 8).unwrap();
        let sel = b.input_bus("s", 3).unwrap();
        let y = b.mux_n(&ins, &sel).unwrap();
        b.output("y", y).unwrap();
        let (nl, _) = b.finish();
        nl.validate().unwrap();
        assert_eq!(nl.num_luts(), 7); // 4 + 2 + 1 mux2s
    }

    #[test]
    fn popcount_width() {
        let mut b = NetBuilder::new("p");
        let ins = b.input_bus("i", 9).unwrap();
        let cnt = b.popcount(&ins).unwrap();
        b.output_bus("c", &cnt).unwrap();
        let (nl, _) = b.finish();
        nl.validate().unwrap();
        assert_eq!(cnt.len(), 4); // 0..=9 fits in 4 bits
    }

    #[test]
    fn ff_loop_closes() {
        let mut b = NetBuilder::new("t");
        let q = b.ff_loop(false, |b, q| b.not(q)).unwrap();
        b.output("q", q).unwrap();
        let (nl, _) = b.finish();
        assert_eq!(nl.num_ffs(), 1);
        nl.topo_order().unwrap();
    }

    #[test]
    fn hierarchy_scoping() {
        let mut b = NetBuilder::new("top");
        b.enter_block("alu");
        let a = b.input("a").unwrap();
        let inv = b.not(a).unwrap();
        b.exit_to_root();
        b.output("y", inv).unwrap();
        let (nl, h) = b.finish();
        let inv_cell = nl.net(inv).unwrap().driver.unwrap();
        let node = h.node_of_cell(inv_cell).unwrap();
        assert_eq!(h.path(node).unwrap(), "top/alu");
        assert_eq!(h.functional_block_of(inv_cell), Some(node));
    }

    #[test]
    fn equals_const_matches() {
        let mut b = NetBuilder::new("eq");
        let bus = b.input_bus("v", 4).unwrap();
        let hit = b.equals_const(&bus, 0b1010).unwrap();
        b.output("hit", hit).unwrap();
        let (nl, _) = b.finish();
        nl.validate().unwrap();
    }
}

//! Parameterized finite-state-machine benchmark generator.
//!
//! Models the MCNC sequential controllers (styr, sand, planet1): a
//! state register plus random-but-deterministic next-state and output
//! logic clouds sized to match each benchmark's mapped LUT count.

use netlist::{Hierarchy, Netlist, NetlistError};

use crate::builder::NetBuilder;
use crate::filler::{random_cloud, tie_off_unreachable};

/// Shape parameters of a generated FSM benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmSpec {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// State register width.
    pub state_bits: usize,
    /// LUT budget of the next-state cloud.
    pub next_state_luts: usize,
    /// LUT budget of the output cloud.
    pub output_luts: usize,
    /// RNG seed (fixes the design exactly).
    pub seed: u64,
}

/// Generates an FSM benchmark from a spec.
///
/// The hierarchy gets three functional blocks: `state`, `next_logic`,
/// and `out_logic`, which is what Quick_ECO-style functional-block
/// granularity operates on.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn generate(name: &str, spec: FsmSpec) -> Result<(Netlist, Hierarchy), NetlistError> {
    let mut b = NetBuilder::new(name);
    let pis = b.input_bus("in", spec.inputs)?;

    // State register with placeholder D inputs, closed after the cloud.
    b.enter_block("state");
    let mut ffs = Vec::with_capacity(spec.state_bits);
    let mut qs = Vec::with_capacity(spec.state_bits);
    for i in 0..spec.state_bits {
        let seed_net = b
            .netlist()
            .find_net(&format!("{name}_d{i}"))
            .map_or_else(|| None, Some);
        debug_assert!(seed_net.is_none());
        // ff_loop can't be used directly because all state bits feed
        // one shared cloud; wire seeds manually.
        let q = b.ff_loop(i == 0, |bb, q| {
            // Temporarily feed back Q; rewired below via the cloud.
            Ok({
                let _ = bb;
                q
            })
        })?;
        qs.push(q);
        let driver = b.netlist().net(q)?.driver.expect("ff drives q");
        ffs.push(driver);
    }
    b.exit_to_root();

    let mut cloud_in = pis.clone();
    cloud_in.extend(&qs);

    b.enter_block("next_logic");
    let next = random_cloud(
        &mut b,
        spec.seed,
        &cloud_in,
        spec.next_state_luts,
        spec.state_bits,
    )?;
    b.exit_to_root();

    b.enter_block("out_logic");
    let outs = random_cloud(
        &mut b,
        spec.seed.wrapping_add(0x9e37_79b9),
        &cloud_in,
        spec.output_luts,
        spec.outputs,
    )?;
    b.exit_to_root();

    // Close the state loops onto the next-state cloud.
    {
        let nl = b.netlist_mut();
        for (ff, d) in ffs.iter().zip(&next) {
            nl.set_pin(*ff, 0, *d)?;
        }
    }
    b.output_bus("out", &outs)?;
    tie_off_unreachable(&mut b)?;
    let (nl, h) = b.finish();
    nl.validate()?;
    Ok((nl, h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FsmSpec {
        FsmSpec {
            inputs: 9,
            outputs: 10,
            state_bits: 5,
            next_state_luts: 60,
            output_luts: 40,
            seed: 11,
        }
    }

    #[test]
    fn fsm_validates_and_sizes() {
        let (nl, _) = generate("fsm_t", spec()).unwrap();
        assert_eq!(nl.num_ffs(), 5);
        assert_eq!(nl.primary_inputs().len(), 9);
        // Spec outputs plus any `deadpad[k]` tie-offs.
        let functional = nl
            .primary_outputs()
            .iter()
            .filter(|&&c| nl.cell(c).unwrap().name.starts_with("out["))
            .count();
        assert_eq!(functional, 10);
        assert!(nl.num_luts() >= 100);
        assert!(nl.is_sequential());
    }

    #[test]
    fn fsm_is_deterministic() {
        let a = netlist::blif::write(&generate("fsm_t", spec()).unwrap().0);
        let b = netlist::blif::write(&generate("fsm_t", spec()).unwrap().0);
        assert_eq!(a, b);
    }

    #[test]
    fn functional_blocks_exist() {
        let (nl, h) = generate("fsm_t", spec()).unwrap();
        let ff = nl.cells().find(|(_, c)| c.is_sequential()).unwrap().0;
        let blk = h.functional_block_of(ff).unwrap();
        assert_eq!(h.name(blk).unwrap(), "state");
    }
}

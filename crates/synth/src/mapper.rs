//! Technology mapping onto 4-input LUTs.
//!
//! Generators express logic with up to 6-input truth tables (DES
//! S-boxes are 6-input). The XC4000 CLB offers 4-input LUTs, so
//! [`map_to_lut4`] rewrites every wider function into a tree of 4-LUTs
//! by Shannon decomposition, after first shrinking each function to its
//! true support. [`sweep_buffers`] removes identity LUTs left behind
//! by generator plumbing.

use netlist::{CellKind, Hierarchy, NetId, Netlist, NetlistError, TruthTable};

/// Maps a netlist onto 4-input LUTs, preserving hierarchy links.
///
/// Every cell of the input appears in the output under its original
/// name (decomposition helpers get `name$sK` suffixes) and is assigned
/// to the same hierarchy node as its source cell.
///
/// # Errors
///
/// Propagates netlist construction errors; the input is unchanged.
pub fn map_to_lut4_with_hierarchy(
    nl: &Netlist,
    hier: &Hierarchy,
) -> Result<(Netlist, Hierarchy), NetlistError> {
    let mut out = Netlist::new(nl.name());
    let mut out_hier = Hierarchy::new(nl.name());
    // Mirror the hierarchy tree structure 1:1 (ids are preserved
    // because insertion order is identical).
    for node in hier.iter() {
        if node == hier.root() {
            continue;
        }
        let parent = parent_of(hier, node);
        out_hier.add_child(parent, hier.name(node)?.to_string());
    }

    // Nets first, preserving names.
    let mut net_map: Vec<Option<NetId>> = vec![None; nl.net_capacity()];
    for (id, net) in nl.nets() {
        let new = out.add_net(net.name.clone())?;
        net_map[id.index()] = Some(new);
    }
    let map_net = |m: &Vec<Option<NetId>>, id: NetId| -> Result<NetId, NetlistError> {
        m.get(id.index())
            .copied()
            .flatten()
            .ok_or(NetlistError::UnknownNet(id))
    };

    let mut fresh = 0u64;
    for (id, cell) in nl.cells() {
        let scope = hier.node_of_cell(id).unwrap_or_else(|| hier.root());
        let new_cell = match &cell.kind {
            CellKind::Input => {
                let o = map_net(&net_map, cell.output.expect("inputs drive a net"))?;
                out.add_input_driving(cell.name.clone(), o)?
            }
            CellKind::Output => {
                let i = map_net(&net_map, cell.inputs[0])?;
                out.add_output(cell.name.clone(), i)?
            }
            CellKind::Ff { init } => {
                let d = map_net(&net_map, cell.inputs[0])?;
                let q = map_net(&net_map, cell.output.expect("ffs drive a net"))?;
                out.add_ff_driving(cell.name.clone(), *init, d, q)?
            }
            CellKind::Lut(tt) => {
                let ins: Vec<NetId> = cell
                    .inputs
                    .iter()
                    .map(|&n| map_net(&net_map, n))
                    .collect::<Result<_, _>>()?;
                let o = map_net(&net_map, cell.output.expect("luts drive a net"))?;
                let (tt, ins) = reduce_support(*tt, &ins);

                emit_lut4(
                    &mut out,
                    &mut out_hier,
                    scope,
                    &cell.name,
                    &mut fresh,
                    tt,
                    &ins,
                    Some(o),
                )?
            }
        };
        out_hier.assign_cell(scope, new_cell);
    }
    Ok((out, out_hier))
}

/// Maps a netlist onto 4-input LUTs, discarding hierarchy.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn map_to_lut4(nl: &Netlist) -> Result<Netlist, NetlistError> {
    let hier = Hierarchy::new(nl.name());
    Ok(map_to_lut4_with_hierarchy(nl, &hier)?.0)
}

fn parent_of(hier: &Hierarchy, node: netlist::HierarchyNodeId) -> netlist::HierarchyNodeId {
    // The hierarchy API exposes children; recover the parent by scan.
    for cand in hier.iter() {
        if let Ok(children) = hier.children(cand) {
            if children.contains(&node) {
                return cand;
            }
        }
    }
    hier.root()
}

/// Drops truth-table variables outside the function's support.
fn reduce_support(tt: TruthTable, inputs: &[NetId]) -> (TruthTable, Vec<NetId>) {
    let mut t = tt;
    let mut ins = inputs.to_vec();
    let mut var = 0;
    while var < t.arity() {
        if t.depends_on(var) {
            var += 1;
        } else {
            t = t.cofactor(var, false);
            ins.remove(var);
        }
    }
    (t, ins)
}

/// Recursively emits `tt(inputs)` as 4-LUTs; the final LUT is named
/// `name` and drives `drive` when given (else a fresh net).
#[allow(clippy::too_many_arguments)]
fn emit_lut4(
    out: &mut Netlist,
    out_hier: &mut Hierarchy,
    scope: netlist::HierarchyNodeId,
    name: &str,
    fresh: &mut u64,
    tt: TruthTable,
    inputs: &[NetId],
    drive: Option<NetId>,
) -> Result<netlist::CellId, NetlistError> {
    if tt.arity() <= 4 {
        let cell = match drive {
            Some(o) => out.add_lut_driving(name.to_string(), tt, inputs, o)?,
            None => out.add_lut(name.to_string(), tt, inputs)?,
        };
        out_hier.assign_cell(scope, cell);
        return Ok(cell);
    }
    // Shannon split on the highest variable.
    let var = tt.arity() - 1;
    let sel = inputs[var];
    let rest = &inputs[..var];
    let mut halves = Vec::with_capacity(2);
    for value in [false, true] {
        let (sub, sub_ins) = reduce_support(tt.cofactor(var, value), rest);
        *fresh += 1;
        let sub_name = format!("{name}$s{fresh}");
        let cell = emit_lut4(out, out_hier, scope, &sub_name, fresh, sub, &sub_ins, None)?;
        halves.push(out.cell_output(cell)?);
    }
    let mux = TruthTable::mux2();
    let cell = match drive {
        Some(o) => out.add_lut_driving(name.to_string(), mux, &[halves[0], halves[1], sel], o)?,
        None => out.add_lut(name.to_string(), mux, &[halves[0], halves[1], sel])?,
    };
    out_hier.assign_cell(scope, cell);
    Ok(cell)
}

/// Removes identity (buffer) LUTs in place, rewiring their sinks.
///
/// Returns the number of buffers removed. Buffers driving a primary
/// output net directly from a primary input net are kept when removal
/// would merge two named port nets.
///
/// # Errors
///
/// Propagates netlist editing errors.
pub fn sweep_buffers(nl: &mut Netlist) -> Result<usize, NetlistError> {
    let buf = TruthTable::buf();
    let victims: Vec<_> = nl
        .cells()
        .filter(|(_, c)| c.lut_function() == Some(&buf))
        .map(|(id, _)| id)
        .collect();
    let mut removed = 0;
    for id in victims {
        // Re-read connectivity now: an earlier removal in a buffer
        // chain may already have rewired this cell's input.
        let cell = nl.cell(id)?;
        let src = cell.inputs[0];
        let dst = cell.output.expect("luts drive a net");
        let sinks: Vec<_> = nl.net(dst)?.sinks.clone();
        for s in &sinks {
            nl.set_pin(s.cell, s.pin, src)?;
        }
        nl.remove_cell(id)?;
        nl.remove_net(dst)?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    fn six_input_design() -> (Netlist, Hierarchy) {
        let mut b = NetBuilder::new("wide");
        b.enter_block("blk");
        let ins = b.input_bus("i", 6).unwrap();
        let y = b
            .lut(
                TruthTable::from_fn(6, |row| row.count_ones() % 3 == 0),
                &ins,
            )
            .unwrap();
        b.exit_to_root();
        b.output("y", y).unwrap();
        b.finish()
    }

    #[test]
    fn wide_lut_decomposes() {
        let (nl, h) = six_input_design();
        let (mapped, mh) = map_to_lut4_with_hierarchy(&nl, &h).unwrap();
        mapped.validate().unwrap();
        assert!(mapped
            .cells()
            .all(|(_, c)| c.lut_function().is_none_or(|t| t.arity() <= 4)));
        assert!(mapped.num_luts() > 1);
        // Hierarchy preserved: every decomposed LUT sits in blk.
        for (id, c) in mapped.cells() {
            if c.is_logic() {
                let node = mh.node_of_cell(id).unwrap();
                assert_eq!(mh.path(node).unwrap(), "wide/blk");
            }
        }
    }

    #[test]
    fn mapping_preserves_function() {
        // Check all 64 input rows via direct table evaluation through
        // the mapped network (mini-interpreter).
        let (nl, h) = six_input_design();
        let (mapped, _) = map_to_lut4_with_hierarchy(&nl, &h).unwrap();
        let golden = TruthTable::from_fn(6, |row| row.count_ones() % 3 == 0);
        for row in 0..64u64 {
            let mut values = std::collections::HashMap::new();
            for (i, &pi) in mapped.primary_inputs().iter().enumerate() {
                let net = mapped.cell_output(pi).unwrap();
                values.insert(net, row >> i & 1 == 1);
            }
            for id in mapped.topo_order().unwrap() {
                let cell = mapped.cell(id).unwrap();
                if let Some(tt) = cell.lut_function() {
                    let ins: Vec<bool> = cell.inputs.iter().map(|n| values[n]).collect();
                    values.insert(cell.output.unwrap(), tt.eval(&ins));
                }
            }
            let po = mapped.primary_outputs()[0];
            let net = mapped.cell(po).unwrap().inputs[0];
            assert_eq!(values[&net], golden.eval_row(row), "row {row}");
        }
    }

    #[test]
    fn support_reduction_shrinks() {
        let mut b = NetBuilder::new("red");
        let ins = b.input_bus("i", 5).unwrap();
        // Function of 5 declared inputs that only uses input 0.
        let tt = TruthTable::var(5, 0);
        let y = b.lut(tt, &ins).unwrap();
        b.output("y", y).unwrap();
        let (nl, _) = b.finish();
        let mapped = map_to_lut4(&nl).unwrap();
        assert_eq!(mapped.num_luts(), 1);
        let (_, lut) = mapped
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .unwrap();
        assert_eq!(lut.arity(), 1);
    }

    #[test]
    fn small_luts_pass_through_unchanged() {
        let mut b = NetBuilder::new("small");
        let a = b.input("a").unwrap();
        let c = b.input("b").unwrap();
        let y = b.and2(a, c).unwrap();
        b.output("y", y).unwrap();
        let (nl, _) = b.finish();
        let mapped = map_to_lut4(&nl).unwrap();
        assert_eq!(mapped.num_luts(), nl.num_luts());
        assert_eq!(mapped.stats().depth, nl.stats().depth);
    }

    #[test]
    fn sweep_removes_buffers() {
        let mut b = NetBuilder::new("bufs");
        let a = b.input("a").unwrap();
        let buf1 = b.lut(TruthTable::buf(), &[a]).unwrap();
        let buf2 = b.lut(TruthTable::buf(), &[buf1]).unwrap();
        let inv = b.not(buf2).unwrap();
        b.output("y", inv).unwrap();
        let (mut nl, _) = b.finish();
        let removed = sweep_buffers(&mut nl).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(nl.num_luts(), 1);
        nl.validate().unwrap();
    }

    #[test]
    fn ffs_survive_mapping() {
        let mut b = NetBuilder::new("seq");
        let q = b.ff_loop(true, |b, q| b.not(q)).unwrap();
        b.output("q", q).unwrap();
        let (nl, _) = b.finish();
        let mapped = map_to_lut4(&nl).unwrap();
        assert_eq!(mapped.num_ffs(), 1);
        mapped.validate().unwrap();
    }
}

//! Regenerated MCNC-style benchmarks.
//!
//! Seven of the paper's nine designs are MCNC circuits. Each generator
//! below rebuilds the circuit's *kind* — symmetric function, XOR
//! error-correcting network, ALU, FSM controller, large sequential
//! netlist — and calibrates its mapped size to the paper's Table 1 CLB
//! count (see `designs::PaperDesign` for the targets).

use netlist::{Hierarchy, Netlist, NetlistError};

use crate::builder::NetBuilder;
use crate::filler::{pad_to_lut_count, random_cloud, tie_off_unreachable};
use crate::fsm::{self, FsmSpec};

/// 9sym: 9-input symmetric function (true when 3..=6 inputs are high),
/// padded to the paper's 56-CLB mapping.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn nine_sym() -> Result<(Netlist, Hierarchy), NetlistError> {
    let mut b = NetBuilder::new("9sym");
    let ins = b.input_bus("x", 9)?;

    b.enter_block("popcount");
    let count = b.popcount(&ins)?;
    b.exit_to_root();

    b.enter_block("compare");
    // 3 <= count <= 6 over the 4-bit count.
    let mut hits = Vec::new();
    for v in 3..=6u64 {
        hits.push(b.equals_const(&count, v)?);
    }
    let y = b.lut(netlist::TruthTable::or(4), &hits)?;
    b.exit_to_root();
    b.output("y", y)?;

    b.enter_block("pad");
    pad_to_lut_count(&mut b, 0x95_193, 112, &ins)?;
    b.exit_to_root();
    tie_off_unreachable(&mut b)?;

    let (nl, h) = b.finish();
    nl.validate()?;
    Ok((nl, h))
}

/// c499: 32-bit single-error-correcting network (Hamming-style
/// syndrome decode plus correction XORs), the paper's 115-CLB circuit.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn c499() -> Result<(Netlist, Hierarchy), NetlistError> {
    let mut b = NetBuilder::new("c499");
    let data = b.input_bus("d", 32)?;
    let check = b.input_bus("c", 6)?;

    // Codeword positions: data bit i sits at the i-th non-power-of-two
    // position >= 3 (classic Hamming layout).
    let mut positions = Vec::with_capacity(32);
    let mut p = 3u64;
    while positions.len() < 32 {
        if !p.is_power_of_two() {
            positions.push(p);
        }
        p += 1;
    }

    b.enter_block("syndrome");
    let mut syndrome = Vec::with_capacity(6);
    for j in 0..6 {
        let mut members: Vec<_> = positions
            .iter()
            .enumerate()
            .filter(|(_, &pos)| pos >> j & 1 == 1)
            .map(|(i, _)| data[i])
            .collect();
        members.push(check[j]);
        syndrome.push(b.xor_tree(&members)?);
    }
    b.exit_to_root();

    b.enter_block("decode");
    // Shared complement rail keeps the decoder near the real c499's
    // mapped size (per-position inverters would double it).
    let syndrome_n: Vec<_> = syndrome
        .iter()
        .map(|&s| b.not(s))
        .collect::<Result<Vec<_>, _>>()?;
    let mut flips = Vec::with_capacity(32);
    for &pos in &positions {
        let conds: Vec<_> = (0..6)
            .map(|j| {
                if pos >> j & 1 == 1 {
                    syndrome[j]
                } else {
                    syndrome_n[j]
                }
            })
            .collect();
        flips.push(b.and_tree(&conds)?);
    }
    b.exit_to_root();

    b.enter_block("correct");
    let mut corrected = Vec::with_capacity(32);
    for i in 0..32 {
        corrected.push(b.xor2(data[i], flips[i])?);
    }
    b.exit_to_root();
    b.output_bus("q", &corrected)?;

    b.enter_block("pad");
    pad_to_lut_count(&mut b, 0xc4_99, 230, &data)?;
    b.exit_to_root();
    tie_off_unreachable(&mut b)?;

    let (nl, h) = b.finish();
    nl.validate()?;
    Ok((nl, h))
}

/// c880: 8-bit ALU (add/sub/logic/shift with flag outputs), the
/// paper's 135-CLB circuit.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn c880() -> Result<(Netlist, Hierarchy), NetlistError> {
    let mut b = NetBuilder::new("c880");
    let a = b.input_bus("a", 8)?;
    let bb = b.input_bus("b", 8)?;
    let op = b.input_bus("op", 3)?;
    let cin = b.input("cin")?;

    b.enter_block("arith");
    let (sum, cout) = b.ripple_adder(&a, &bb, Some(cin))?;
    let not_b: Vec<_> = bb.iter().map(|&n| b.not(n)).collect::<Result<_, _>>()?;
    let one = b.constant(true)?;
    let (diff, bout) = b.ripple_adder(&a, &not_b, Some(one))?;
    b.exit_to_root();

    b.enter_block("logic");
    let mut and_bus = Vec::new();
    let mut or_bus = Vec::new();
    let mut xor_bus = Vec::new();
    for i in 0..8 {
        and_bus.push(b.and2(a[i], bb[i])?);
        or_bus.push(b.or2(a[i], bb[i])?);
        xor_bus.push(b.xor2(a[i], bb[i])?);
    }
    // Shift-left-by-one of a.
    let zero = b.constant(false)?;
    let mut shl = vec![zero];
    shl.extend(&a[..7]);
    b.exit_to_root();

    b.enter_block("muxout");
    let mut result = Vec::with_capacity(8);
    for i in 0..8 {
        let choices = [
            sum[i], diff[i], and_bus[i], or_bus[i], xor_bus[i], shl[i], a[i], bb[i],
        ];
        result.push(b.mux_n(&choices, &op)?);
    }
    let zero_flag = {
        let inverted: Vec<_> = result
            .iter()
            .map(|&n| b.not(n))
            .collect::<Result<Vec<_>, _>>()?;
        b.and_tree(&inverted)?
    };
    let parity = b.xor_tree(&result)?;
    b.exit_to_root();

    b.output_bus("r", &result)?;
    b.output("cout", cout)?;
    b.output("bout", bout)?;
    b.output("zero", zero_flag)?;
    b.output("parity", parity)?;

    b.enter_block("pad");
    let mut seeds = a.clone();
    seeds.extend(&bb);
    pad_to_lut_count(&mut b, 0xc8_80, 270, &seeds)?;
    b.exit_to_root();
    tie_off_unreachable(&mut b)?;

    let (nl, h) = b.finish();
    nl.validate()?;
    Ok((nl, h))
}

/// styr: FSM controller sized to the paper's 98 CLBs.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn styr() -> Result<(Netlist, Hierarchy), NetlistError> {
    fsm::generate(
        "styr",
        FsmSpec {
            inputs: 9,
            outputs: 10,
            state_bits: 5,
            next_state_luts: 115,
            output_luts: 70,
            seed: 0x57_79,
        },
    )
}

/// sand: FSM controller sized to the paper's 100 CLBs.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn sand() -> Result<(Netlist, Hierarchy), NetlistError> {
    fsm::generate(
        "sand",
        FsmSpec {
            inputs: 11,
            outputs: 9,
            state_bits: 5,
            next_state_luts: 120,
            output_luts: 70,
            seed: 0x5a_4d,
        },
    )
}

/// planet1: FSM controller sized to the paper's 115 CLBs.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn planet1() -> Result<(Netlist, Hierarchy), NetlistError> {
    fsm::generate(
        "planet1",
        FsmSpec {
            inputs: 7,
            outputs: 19,
            state_bits: 6,
            next_state_luts: 135,
            output_luts: 85,
            seed: 0x0009_1ae7,
        },
    )
}

/// s9234: large ISCAS-89-style sequential circuit — three register
/// banks threaded through random logic clouds — sized to the paper's
/// 235 CLBs (~210 flip-flops, ~470 LUTs).
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn s9234() -> Result<(Netlist, Hierarchy), NetlistError> {
    let mut b = NetBuilder::new("s9234");
    let pis = b.input_bus("in", 36)?;

    const BANKS: usize = 3;
    const BANK_FFS: usize = 70;

    // Create all flip-flops first (placeholder feedback), then route
    // each bank's D inputs through its own cloud.
    let mut ffs = Vec::new();
    let mut qs = Vec::new();
    b.enter_block("registers");
    for _ in 0..BANKS * BANK_FFS {
        let q = b.ff_loop(false, |_, q| Ok(q))?;
        let driver = b.netlist().net(q)?.driver.expect("ff drives q");
        qs.push(q);
        ffs.push(driver);
    }
    b.exit_to_root();

    let mut cloud_in = pis.clone();
    cloud_in.extend(&qs);

    for bank in 0..BANKS {
        b.enter_block(format!("cloud{bank}"));
        let d = random_cloud(&mut b, 0x9234 + bank as u64, &cloud_in, 140, BANK_FFS)?;
        b.exit_to_root();
        let nl = b.netlist_mut();
        for (k, &dnet) in d.iter().enumerate() {
            nl.set_pin(ffs[bank * BANK_FFS + k], 0, dnet)?;
        }
    }

    b.enter_block("out_logic");
    let outs = random_cloud(&mut b, 0x0923_40ff, &cloud_in, 55, 39)?;
    b.exit_to_root();
    b.output_bus("out", &outs)?;
    tie_off_unreachable(&mut b)?;

    let (nl, h) = b.finish();
    nl.validate()?;
    Ok((nl, h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clbs(nl: &Netlist) -> usize {
        nl.stats().clb_estimate()
    }

    #[test]
    fn nine_sym_function_is_symmetric() {
        let (nl, _) = nine_sym().unwrap();
        // Evaluate the y output for a handful of rows via interpretation.
        let eval = |row: u64| -> bool {
            let mut values = std::collections::HashMap::new();
            for (i, &pi) in nl.primary_inputs().iter().enumerate() {
                let net = nl.cell_output(pi).unwrap();
                values.insert(net, row >> i & 1 == 1);
            }
            for id in nl.topo_order().unwrap() {
                let cell = nl.cell(id).unwrap();
                if let Some(tt) = cell.lut_function() {
                    let ins: Vec<bool> = cell.inputs.iter().map(|n| values[n]).collect();
                    values.insert(cell.output.unwrap(), tt.eval(&ins));
                }
            }
            let y = nl.find_cell("y").unwrap();
            values[&nl.cell(y).unwrap().inputs[0]]
        };
        assert!(!eval(0b000000000));
        assert!(eval(0b000000111)); // 3 ones
        assert!(eval(0b111100110)); // 6 ones
        assert!(!eval(0b111111110)); // 8 ones
        assert!(!eval(0b110000000)); // 2 ones
    }

    type Generator = fn() -> Result<(Netlist, Hierarchy), NetlistError>;

    #[test]
    fn sizes_match_table1() {
        // (generator, paper CLBs)
        let cases: Vec<(Generator, usize)> = vec![
            (nine_sym, 56),
            (styr, 98),
            (sand, 100),
            (c499, 115),
            (planet1, 115),
            (c880, 135),
            (s9234, 235),
        ];
        for (gen, target) in cases {
            let (nl, _) = gen().unwrap();
            let got = clbs(&nl);
            let lo = target * 92 / 100;
            let hi = target * 112 / 100;
            assert!(
                (lo..=hi).contains(&got),
                "{}: {got} CLBs vs paper {target}",
                nl.name()
            );
        }
    }

    #[test]
    fn c499_corrects_single_errors() {
        let (nl, _) = c499().unwrap();
        // Interpretation harness: data word with one flipped bit plus
        // matching check bits must decode to the original word.
        let mut positions = Vec::new();
        let mut p = 3u64;
        while positions.len() < 32 {
            if !p.is_power_of_two() {
                positions.push(p);
            }
            p += 1;
        }
        let word: u32 = 0xdead_beef;
        // Compute check bits in software.
        let mut check = [false; 6];
        for j in 0..6 {
            let mut s = false;
            for (i, &pos) in positions.iter().enumerate() {
                if pos >> j & 1 == 1 {
                    s ^= word >> i & 1 == 1;
                }
            }
            check[j] = s;
        }
        let flipped_bit = 11usize;
        let corrupted = word ^ (1 << flipped_bit);

        let mut values = std::collections::HashMap::new();
        for (i, &pi) in nl.primary_inputs().iter().enumerate() {
            let net = nl.cell_output(pi).unwrap();
            let name = &nl.cell(pi).unwrap().name;
            let v = if let Some(rest) = name.strip_prefix("d[") {
                let idx: usize = rest.trim_end_matches(']').parse().unwrap();
                corrupted >> idx & 1 == 1
            } else if let Some(rest) = name.strip_prefix("c[") {
                let idx: usize = rest.trim_end_matches(']').parse().unwrap();
                check[idx]
            } else {
                let _ = i;
                false
            };
            values.insert(net, v);
        }
        for id in nl.topo_order().unwrap() {
            let cell = nl.cell(id).unwrap();
            if let Some(tt) = cell.lut_function() {
                let ins: Vec<bool> = cell.inputs.iter().map(|n| values[n]).collect();
                values.insert(cell.output.unwrap(), tt.eval(&ins));
            }
        }
        for i in 0..32 {
            let po = nl.find_cell(&format!("q[{i}]")).unwrap();
            let got = values[&nl.cell(po).unwrap().inputs[0]];
            assert_eq!(got, word >> i & 1 == 1, "bit {i}");
        }
    }

    #[test]
    fn s9234_is_register_heavy() {
        let (nl, _) = s9234().unwrap();
        assert_eq!(nl.num_ffs(), 210);
        assert!(nl.num_luts() > 400);
    }

    #[test]
    fn all_generators_are_deterministic() {
        let a = netlist::blif::write(&c880().unwrap().0);
        let b = netlist::blif::write(&c880().unwrap().0);
        assert_eq!(a, b);
    }
}

//! Span tracer with dual timestamps, exported as Chrome trace-event
//! JSON (Perfetto-loadable) and JSONL.
//!
//! Every span carries **two clocks**:
//!
//! * measured wall-clock (`ts`/`dur` in microseconds since the tracer
//!   epoch) — what Perfetto lays out on screen;
//! * deterministic **effort units** (the paper's place-moves +
//!   route-expansions metric) in the span's `args` — what the repro's
//!   claims are stated in, byte-identical across worker counts.
//!
//! Spans live on *tracks*. A track is usually one campaign or one
//! bench cell; [`Tracer::pool_tracks`] additionally reconstructs one
//! track per pool worker from the busy segments
//! [`parallel::PoolStats`] records, so a fleet trace shows both views:
//! what each campaign did, and what each worker ran.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use parallel::PoolStats;

/// Identifies one horizontal track (Perfetto thread) in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(usize);

impl TrackId {
    /// The Chrome trace `tid` this track renders as.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The track the span lives on.
    pub track: TrackId,
    /// Span name (phase name, campaign id, "task", ...).
    pub name: String,
    /// Category (`"phase"`, `"campaign"`, `"pool"`, `"workload"`).
    pub cat: String,
    /// Wall-clock start, microseconds since the tracer epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Deterministic effort units spent inside the span.
    pub effort_units: u64,
}

#[derive(Debug, Default)]
struct Inner {
    tracks: Vec<String>,
    spans: Vec<SpanRecord>,
}

/// Collects spans from any number of threads; export once at the end.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer whose epoch (timestamp zero) is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Registers a named track; spans reference it by the returned id.
    pub fn track(&self, name: &str) -> TrackId {
        let mut inner = self.inner.lock().unwrap();
        inner.tracks.push(name.to_string());
        TrackId(inner.tracks.len() - 1)
    }

    /// Microseconds elapsed since the tracer epoch — capture this
    /// before a region, pass it to [`Tracer::complete`] after.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records a span that started at `start_us` and ends now.
    pub fn complete(
        &self,
        track: TrackId,
        name: &str,
        cat: &str,
        start_us: u64,
        effort_units: u64,
    ) {
        let end = self.now_us();
        self.add_span_at(
            track,
            name,
            cat,
            start_us,
            end.saturating_sub(start_us),
            effort_units,
        );
    }

    /// Records a span with explicit start/duration — used to
    /// reconstruct spans measured elsewhere (pool busy segments).
    pub fn add_span_at(
        &self,
        track: TrackId,
        name: &str,
        cat: &str,
        start_us: u64,
        dur_us: u64,
        effort_units: u64,
    ) {
        self.inner.lock().unwrap().spans.push(SpanRecord {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us,
            effort_units,
        });
    }

    /// Reconstructs one track per pool worker from the busy segments a
    /// [`PoolStats`] recorded. `offset_us` is the tracer timestamp at
    /// which the pool started (segments are pool-relative).
    pub fn pool_tracks(&self, prefix: &str, stats: &PoolStats, offset_us: u64) {
        for (w, segments) in stats.busy_segments.iter().enumerate() {
            let track = self.track(&format!("{prefix} {w}"));
            for &(seg_start, seg_end) in segments {
                let s = u64::try_from(seg_start.as_micros()).unwrap_or(u64::MAX);
                let e = u64::try_from(seg_end.as_micros()).unwrap_or(u64::MAX);
                self.add_span_at(track, "task", "pool", offset_us + s, e.saturating_sub(s), 0);
            }
        }
    }

    /// A copy of every span recorded so far, sorted by
    /// `(track, start, name)` for stable iteration.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.inner.lock().unwrap().spans.clone();
        spans.sort_by(|a, b| {
            (a.track.0, a.start_us, &a.name).cmp(&(b.track.0, b.start_us, &b.name))
        });
        spans
    }

    fn track_names(&self) -> Vec<String> {
        self.inner.lock().unwrap().tracks.clone()
    }

    /// Chrome trace-event JSON (`{"traceEvents": [...]}`): open in
    /// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    /// One `thread_name` metadata record per track, then one complete
    /// (`"ph": "X"`) event per span with the effort units in `args`.
    pub fn to_chrome_trace(&self) -> String {
        let tracks = self.track_names();
        let spans = self.spans();
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        for (tid, name) in tracks.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(name)
            );
        }
        for s in &spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{}\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"effort_units\": {}}}}}",
                escape(&s.name),
                escape(&s.cat),
                s.start_us,
                s.dur_us,
                s.track.0,
                s.effort_units
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// One JSON object per line per span (join key: `track` +
    /// `start_us`), for grep/jq pipelines that don't want the Chrome
    /// envelope.
    pub fn to_jsonl(&self) -> String {
        let tracks = self.track_names();
        let mut out = String::new();
        for s in self.spans() {
            let track_name = tracks
                .get(s.track.0)
                .map(String::as_str)
                .unwrap_or("unknown");
            let _ = writeln!(
                out,
                "{{\"track\": {}, \"track_name\": \"{}\", \"name\": \"{}\", \"cat\": \"{}\", \
                 \"ts_us\": {}, \"dur_us\": {}, \"effort_units\": {}}}",
                s.track.0,
                escape(track_name),
                escape(&s.name),
                escape(&s.cat),
                s.start_us,
                s.dur_us,
                s.effort_units
            );
        }
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_carry_dual_timestamps() {
        let t = Tracer::new();
        let track = t.track("session");
        let t0 = t.now_us();
        t.complete(track, "localize", "phase", t0, 42);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "localize");
        assert_eq!(spans[0].effort_units, 42);
        assert!(spans[0].start_us >= t0);
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let t = Tracer::new();
        let track = t.track("campaign c00");
        t.add_span_at(track, "detect", "phase", 10, 5, 0);
        let doc = t.to_chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\": ["));
        assert!(doc.contains("\"ph\": \"M\""));
        assert!(doc.contains("\"name\": \"campaign c00\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"ts\": 10, \"dur\": 5"));
        assert!(doc.trim_end().ends_with("]}"));
    }

    #[test]
    fn pool_tracks_reconstruct_worker_lanes() {
        let t = Tracer::new();
        let stats = PoolStats {
            tasks_per_worker: vec![2, 1],
            busy_per_worker: vec![Duration::from_micros(30), Duration::from_micros(10)],
            wall: Duration::from_micros(50),
            steals: 1,
            panics: 0,
            peak_queued: 3,
            busy_segments: vec![
                vec![
                    (Duration::from_micros(0), Duration::from_micros(20)),
                    (Duration::from_micros(25), Duration::from_micros(35)),
                ],
                vec![(Duration::from_micros(5), Duration::from_micros(15))],
            ],
        };
        t.pool_tracks("worker", &stats, 100);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].start_us, 100);
        assert_eq!(spans[0].dur_us, 20);
        assert_eq!(spans[2].start_us, 105);
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"track_name\": \"worker 1\""));
    }
}

//! # obs — unified observability for the tiled-debugging stack
//!
//! Hand-rolled (no registry dependencies, same policy as `compat/`)
//! tracing + metrics plane shared by the debug session, the packed
//! simulator, the bench bins, and the `debugd` fleet:
//!
//! * [`Tracer`] — scoped spans with **dual timestamps** (deterministic
//!   effort units + measured wall-clock), exported as Chrome
//!   trace-event JSON (Perfetto-loadable) and JSONL, including one
//!   track per pool worker reconstructed from
//!   [`parallel::PoolStats`] busy segments.
//! * [`MetricsRegistry`] — counters/gauges/histograms with label
//!   sets, `BTreeMap`-ordered so renders are byte-stable, with a
//!   Prometheus-style text exposition split into a *deterministic*
//!   section (byte-identical serial vs. pooled — the PR 7 invariant
//!   extended to metrics) and a *measured* section (wall-clock).
//!
//! The rule of the house: **wall-clock never feeds a deterministic
//! series**. Effort units, ECO counts, cache hits, and event counts
//! are deterministic; durations, utilization, and steal counts live
//! behind [`MEASURED_MARKER`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod metrics;
pub mod trace;

pub use artifacts::{artifact_base, ARTIFACT_DIR};
pub use metrics::{
    HistogramData, MetricValue, MetricsRegistry, MetricsSnapshot, Section, MEASURED_MARKER,
};
pub use trace::{SpanRecord, Tracer, TrackId};

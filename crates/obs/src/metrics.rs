//! Label-set metrics registry with Prometheus text exposition.
//!
//! Series live in a `BTreeMap` keyed by `(name, sorted labels)`, so a
//! snapshot renders **byte-stably**: the same counter values always
//! produce the same text, whatever order threads recorded them in.
//! That property is what lets the fleet compare a 1-worker and an
//! N-worker run with `==` (the PR 7 determinism invariant, extended
//! to metrics).
//!
//! Every series belongs to one of two sections:
//!
//! * **deterministic** — effort units, ECO counts, cache hit/miss,
//!   anything derived from seeds and algorithms. These must be
//!   byte-identical between serial and pooled runs.
//! * **measured** — wall-clock, steal counts, utilization. These are
//!   rendered *after* a marker line ([`MEASURED_MARKER`]) so consumers
//!   can split the exposition and byte-compare only the prefix.
//!
//! Counters and histograms are exact (`u64` buckets keyed by observed
//! value — the workloads observe small integers like taps-per-campaign,
//! so sparse exact buckets beat lossy log buckets); gauges are `f64`
//! and always measured.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Marker line separating the deterministic exposition prefix from
/// the measured (wall-clock) suffix in [`MetricsRegistry::render_prometheus`].
pub const MEASURED_MARKER: &str = "# --- measured section (wall-clock; not byte-stable) ---";

/// Which exposition section a series renders in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Section {
    /// Derived from seeds/algorithms only; byte-identical across
    /// worker counts.
    Deterministic,
    /// Wall-clock and scheduling artifacts; varies run to run.
    Measured,
}

/// Exact sparse histogram: observed value → observation count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramData {
    counts: BTreeMap<u64, u64>,
    sum: u64,
    count: u64,
}

impl HistogramData {
    /// Per-value observation counts (sorted by value).
    pub fn counts(&self) -> &BTreeMap<u64, u64> {
        &self.counts
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    fn observe(&mut self, v: u64) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.sum += v;
        self.count += 1;
    }

    fn diff(&self, earlier: &Self) -> Self {
        let mut counts = BTreeMap::new();
        for (&v, &n) in &self.counts {
            let prev = earlier.counts.get(&v).copied().unwrap_or(0);
            if n > prev {
                counts.insert(v, n - prev);
            }
        }
        Self {
            counts,
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }
}

/// One series' current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic `u64` counter.
    Counter(u64),
    /// Instantaneous `f64` gauge (always measured).
    Gauge(f64),
    /// High-water-mark gauge: updates keep the maximum.
    MaxGauge(u64),
    /// Exact sparse histogram.
    Histogram(HistogramData),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) | Self::MaxGauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

/// `(name, sorted labels)` — the `BTreeMap` ordering that makes
/// renders byte-stable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    labels.sort();
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Series {
    section: Section,
    value: MetricValue,
}

/// Thread-safe metrics registry (one mutex; recording is rare next to
/// the work being measured). `&MetricsRegistry` is `Sync`, so sessions
/// running on pool workers can all record into the fleet's registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<SeriesKey, Series>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn upsert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        section: Section,
        f: impl FnOnce(&mut MetricValue),
        init: MetricValue,
    ) {
        let key = series_key(name, labels);
        let mut inner = self.inner.lock().unwrap();
        let series = inner.entry(key).or_insert(Series {
            section,
            value: init,
        });
        assert_eq!(
            series.section, section,
            "metric '{name}' re-registered in a different section"
        );
        f(&mut series.value);
    }

    /// Adds `v` to a deterministic counter (creating it at 0 first).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.upsert(
            name,
            labels,
            Section::Deterministic,
            |m| match m {
                MetricValue::Counter(c) => *c += v,
                other => panic!("metric '{name}' is a {}, not a counter", other.type_name()),
            },
            MetricValue::Counter(0),
        );
    }

    /// Sets a deterministic counter to an absolute value (for scraping
    /// externally-maintained counters like the artifact store's).
    pub fn counter_set(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.upsert(
            name,
            labels,
            Section::Deterministic,
            |m| match m {
                MetricValue::Counter(c) => *c = v,
                other => panic!("metric '{name}' is a {}, not a counter", other.type_name()),
            },
            MetricValue::Counter(0),
        );
    }

    /// Records one observation into a deterministic histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.upsert(
            name,
            labels,
            Section::Deterministic,
            |m| match m {
                MetricValue::Histogram(h) => h.observe(v),
                other => panic!(
                    "metric '{name}' is a {}, not a histogram",
                    other.type_name()
                ),
            },
            MetricValue::Histogram(HistogramData::default()),
        );
    }

    /// Adds `v` to a **measured** counter (wall-clock sums, steals).
    pub fn measured_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.upsert(
            name,
            labels,
            Section::Measured,
            |m| match m {
                MetricValue::Counter(c) => *c += v,
                other => panic!("metric '{name}' is a {}, not a counter", other.type_name()),
            },
            MetricValue::Counter(0),
        );
    }

    /// Raises a **measured** high-water-mark gauge to at least `v`.
    pub fn measured_max(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.upsert(
            name,
            labels,
            Section::Measured,
            |m| match m {
                MetricValue::MaxGauge(g) => *g = (*g).max(v),
                other => panic!(
                    "metric '{name}' is a {}, not a max gauge",
                    other.type_name()
                ),
            },
            MetricValue::MaxGauge(0),
        );
    }

    /// Sets a **measured** `f64` gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.upsert(
            name,
            labels,
            Section::Measured,
            |m| match m {
                MetricValue::Gauge(g) => *g = v,
                other => panic!("metric '{name}' is a {}, not a gauge", other.type_name()),
            },
            MetricValue::Gauge(0.0),
        );
    }

    /// A point-in-time copy of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            series: self.inner.lock().unwrap().clone(),
        }
    }

    /// Full Prometheus-style exposition: deterministic section,
    /// [`MEASURED_MARKER`], then the measured section.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Only the deterministic exposition prefix — the part that must
    /// be byte-identical between serial and pooled runs.
    pub fn render_deterministic(&self) -> String {
        self.snapshot().render_deterministic()
    }
}

/// An immutable point-in-time copy of a registry's series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    series: BTreeMap<SeriesKey, Series>,
}

impl MetricsSnapshot {
    /// The value of a `u64`-valued series (counter or max gauge); 0 if
    /// absent.
    pub fn value_u64(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.series.get(&series_key(name, labels)).map(|s| &s.value) {
            Some(MetricValue::Counter(c)) => *c,
            Some(MetricValue::MaxGauge(g)) => *g,
            _ => 0,
        }
    }

    /// Sums every counter series named `name` across all label sets.
    pub fn sum_counters(&self, name: &str) -> u64 {
        self.series
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, s)| match &s.value {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// The histogram series, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramData> {
        match self.series.get(&series_key(name, labels)).map(|s| &s.value) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Series-wise difference (`self - earlier`): counters and
    /// histograms subtract (saturating), gauges keep `self`'s value.
    /// Used to carve one batch's contribution out of a cumulative
    /// registry.
    pub fn diff(&self, earlier: &Self) -> Self {
        let mut series = BTreeMap::new();
        for (key, s) in &self.series {
            let value = match (&s.value, earlier.series.get(key).map(|e| &e.value)) {
                (MetricValue::Counter(c), Some(MetricValue::Counter(p))) => {
                    MetricValue::Counter(c.saturating_sub(*p))
                }
                (MetricValue::Histogram(h), Some(MetricValue::Histogram(p))) => {
                    MetricValue::Histogram(h.diff(p))
                }
                (v, _) => v.clone(),
            };
            series.insert(
                key.clone(),
                Series {
                    section: s.section,
                    value,
                },
            );
        }
        Self { series }
    }

    /// Full exposition (see [`MetricsRegistry::render_prometheus`]).
    pub fn render_prometheus(&self) -> String {
        let mut out = self.render_section(Section::Deterministic);
        out.push_str(MEASURED_MARKER);
        out.push('\n');
        out.push_str(&self.render_section(Section::Measured));
        out
    }

    /// Deterministic exposition prefix only.
    pub fn render_deterministic(&self) -> String {
        self.render_section(Section::Deterministic)
    }

    fn render_section(&self, section: Section) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, s) in self.series.iter().filter(|(_, s)| s.section == section) {
            if last_name != Some(key.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", key.name, s.value.type_name());
                last_name = Some(key.name.as_str());
            }
            match &s.value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", key.name, label_block(&key.labels, &[]), c);
                }
                MetricValue::MaxGauge(g) => {
                    let _ = writeln!(out, "{}{} {}", key.name, label_block(&key.labels, &[]), g);
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {:.6}",
                        key.name,
                        label_block(&key.labels, &[]),
                        g
                    );
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (&v, &n) in &h.counts {
                        cum += n;
                        let le = v.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            key.name,
                            label_block(&key.labels, &[("le", &le)]),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        key.name,
                        label_block(&key.labels, &[("le", "+Inf")]),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        label_block(&key.labels, &[]),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        key.name,
                        label_block(&key.labels, &[]),
                        h.count
                    );
                }
            }
        }
        out
    }
}

/// `{k="v",k2="v2"}`, or the empty string for no labels. `extra`
/// pairs (the histogram `le`) render after the series labels.
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_byte_stably_regardless_of_recording_order() {
        let a = MetricsRegistry::new();
        a.counter_add("z_total", &[], 3);
        a.counter_add("a_total", &[("phase", "detect")], 1);
        a.counter_add("a_total", &[("phase", "confirm")], 2);
        let b = MetricsRegistry::new();
        b.counter_add("a_total", &[("phase", "confirm")], 2);
        b.counter_add("z_total", &[], 3);
        b.counter_add("a_total", &[("phase", "detect")], 1);
        assert_eq!(a.render_prometheus(), b.render_prometheus());
        let text = a.render_prometheus();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{phase=\"confirm\"} 2"));
        assert!(text.contains("z_total 3"));
    }

    #[test]
    fn measured_series_render_after_the_marker() {
        let r = MetricsRegistry::new();
        r.counter_add("det_total", &[], 1);
        r.measured_add("wall_us_total", &[], 1234);
        r.gauge_set("util", &[], 0.5);
        r.measured_max("peak", &[], 7);
        r.measured_max("peak", &[], 3);
        let text = r.render_prometheus();
        let marker_at = text.find(MEASURED_MARKER).expect("marker present");
        let det_at = text.find("det_total").unwrap();
        let wall_at = text.find("wall_us_total").unwrap();
        assert!(det_at < marker_at && marker_at < wall_at);
        assert!(text.contains("util 0.500000"));
        assert!(text.contains("peak 7"));
        assert_eq!(r.render_deterministic(), &text[..marker_at]);
    }

    #[test]
    fn histograms_expose_cumulative_buckets() {
        let r = MetricsRegistry::new();
        for v in [2u64, 2, 5, 9] {
            r.observe("taps", &[], v);
        }
        let text = r.render_deterministic();
        assert!(text.contains("# TYPE taps histogram"));
        assert!(text.contains("taps_bucket{le=\"2\"} 2"));
        assert!(text.contains("taps_bucket{le=\"5\"} 3"));
        assert!(text.contains("taps_bucket{le=\"9\"} 4"));
        assert!(text.contains("taps_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("taps_sum 18"));
        assert!(text.contains("taps_count 4"));
    }

    #[test]
    fn snapshot_diff_isolates_a_batch() {
        let r = MetricsRegistry::new();
        r.counter_add("c_total", &[], 5);
        r.observe("h", &[], 1);
        let before = r.snapshot();
        r.counter_add("c_total", &[], 2);
        r.observe("h", &[], 1);
        r.observe("h", &[], 4);
        let delta = r.snapshot().diff(&before);
        assert_eq!(delta.value_u64("c_total", &[]), 2);
        let h = delta.histogram("h", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 5);
        assert_eq!(h.counts().get(&1), Some(&1));
        assert_eq!(h.counts().get(&4), Some(&1));
    }

    #[test]
    fn sum_counters_folds_label_sets() {
        let r = MetricsRegistry::new();
        r.counter_add("x_total", &[("s", "a")], 2);
        r.counter_add("x_total", &[("s", "b")], 3);
        assert_eq!(r.snapshot().sum_counters("x_total"), 5);
        assert_eq!(r.snapshot().value_u64("x_total", &[("s", "b")]), 3);
    }
}

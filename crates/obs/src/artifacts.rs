//! Where `--trace <base>` observability artifacts land on disk.
//!
//! Every bin that records traces/metrics (`multi`, `simbench`,
//! `fleet`) writes `<base>.trace.json`, `<base>.trace.jsonl`, and
//! `<base>.metrics.prom`. Historically a bare stem like `multi.quick`
//! scattered those files across the repository root; they now collect
//! under a gitignored `artifacts/` directory instead. An explicit path
//! (anything containing a separator) is honored verbatim, so callers
//! can still direct output wherever they want.

use std::io;
use std::path::{Path, PathBuf};

/// The directory bare-stem artifacts collect under.
pub const ARTIFACT_DIR: &str = "artifacts";

/// Resolves a `--trace` base: a bare stem lands under
/// [`ARTIFACT_DIR`] (created on demand); a path with a separator is
/// returned unchanged.
///
/// # Errors
///
/// Propagates the failure to create [`ARTIFACT_DIR`].
pub fn artifact_base(base: &str) -> io::Result<PathBuf> {
    if base.contains('/') || base.contains(std::path::MAIN_SEPARATOR) {
        return Ok(PathBuf::from(base));
    }
    let dir = Path::new(ARTIFACT_DIR);
    std::fs::create_dir_all(dir)?;
    Ok(dir.join(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_stem_lands_in_artifact_dir() {
        let p = artifact_base("t.quick").unwrap();
        assert_eq!(p, Path::new(ARTIFACT_DIR).join("t.quick"));
        assert!(Path::new(ARTIFACT_DIR).is_dir());
    }

    #[test]
    fn explicit_path_is_untouched() {
        let p = artifact_base("/tmp/elsewhere/t.quick").unwrap();
        assert_eq!(p, Path::new("/tmp/elsewhere/t.quick"));
    }
}

//! The netlist graph: cells connected by nets.

use std::collections::HashMap;

use crate::cell::{Cell, CellKind};
use crate::error::NetlistError;
use crate::id::{CellId, NetId};
use crate::logic::TruthTable;
use crate::net::{Net, Sink};
use crate::stats::NetlistStats;

/// A mapped gate-level netlist.
///
/// Cells and nets live in slotted arenas so that identifiers stay
/// stable across ECO edits; removed entries become tombstones. All
/// iteration is in ascending index order, which keeps every downstream
/// algorithm (mapping, placement, simulation) deterministic.
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_input("a")?;
/// let inv = nl.add_lut("u_inv", TruthTable::not(), &[nl.cell_output(a)?])?;
/// nl.add_output("y", nl.cell_output(inv)?)?;
/// assert_eq!(nl.stats().luts, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    cells: Vec<Option<Cell>>,
    nets: Vec<Option<Net>>,
    cell_names: HashMap<String, CellId>,
    net_names: HashMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            cell_names: HashMap::new(),
            net_names: HashMap::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a named net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_net(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.net_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = NetId::new(self.nets.len());
        self.net_names.insert(name.clone(), id);
        self.nets.push(Some(Net::new(name)));
        Ok(id)
    }

    fn add_cell_raw(&mut self, cell: Cell) -> Result<CellId, NetlistError> {
        if self.cell_names.contains_key(&cell.name) {
            return Err(NetlistError::DuplicateName(cell.name));
        }
        let id = CellId::new(self.cells.len());
        self.cell_names.insert(cell.name.clone(), id);
        // Wire up connectivity.
        for (pin, &net) in cell.inputs.iter().enumerate() {
            let n = self.net_mut_raw(net)?;
            n.sinks.push(Sink { cell: id, pin });
        }
        if let Some(out) = cell.output {
            let n = self.net_mut_raw(out)?;
            if n.driver.is_some() {
                return Err(NetlistError::MultipleDrivers(out));
            }
            n.driver = Some(id);
        }
        self.cells.push(Some(cell));
        Ok(id)
    }

    /// Adds a primary input; a net with the same name carries its value.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<CellId, NetlistError> {
        let name = name.into();
        let net = self.add_net(name.clone())?;
        self.add_cell_raw(Cell {
            name,
            kind: CellKind::Input,
            inputs: Vec::new(),
            output: Some(net),
        })
    }

    /// Adds a primary output consuming `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken, or
    /// [`NetlistError::UnknownNet`] if `net` does not exist.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        net: NetId,
    ) -> Result<CellId, NetlistError> {
        self.net(net)?;
        self.add_cell_raw(Cell {
            name: name.into(),
            kind: CellKind::Output,
            inputs: vec![net],
            output: None,
        })
    }

    /// Adds a LUT driven by `inputs`; its output net shares its name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the truth-table arity does
    /// not match `inputs.len()`, [`NetlistError::DuplicateName`] if the
    /// name is taken, or [`NetlistError::UnknownNet`] for bad inputs.
    pub fn add_lut(
        &mut self,
        name: impl Into<String>,
        function: TruthTable,
        inputs: &[NetId],
    ) -> Result<CellId, NetlistError> {
        if function.arity() != inputs.len() {
            return Err(NetlistError::BadArity {
                arity: inputs.len(),
                max: function.arity(),
            });
        }
        for &n in inputs {
            self.net(n)?;
        }
        let name = name.into();
        let net = self.add_net(name.clone())?;
        self.add_cell_raw(Cell {
            name,
            kind: CellKind::Lut(function),
            inputs: inputs.to_vec(),
            output: Some(net),
        })
    }

    /// Adds a D flip-flop consuming `d`; its output net shares its name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken or
    /// [`NetlistError::UnknownNet`] if `d` does not exist.
    pub fn add_ff(
        &mut self,
        name: impl Into<String>,
        init: bool,
        d: NetId,
    ) -> Result<CellId, NetlistError> {
        self.net(d)?;
        let name = name.into();
        let net = self.add_net(name.clone())?;
        self.add_cell_raw(Cell {
            name,
            kind: CellKind::Ff { init },
            inputs: vec![d],
            output: Some(net),
        })
    }

    /// Adds a primary input driving an existing (driverless) net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`],
    /// [`NetlistError::UnknownNet`], or
    /// [`NetlistError::MultipleDrivers`].
    pub fn add_input_driving(
        &mut self,
        name: impl Into<String>,
        net: NetId,
    ) -> Result<CellId, NetlistError> {
        self.net(net)?;
        self.add_cell_raw(Cell {
            name: name.into(),
            kind: CellKind::Input,
            inputs: Vec::new(),
            output: Some(net),
        })
    }

    /// Adds a LUT driving an existing (driverless) net.
    ///
    /// Unlike [`Netlist::add_lut`], the output net is supplied by the
    /// caller — used by file readers where net names are explicit.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::add_lut`], plus
    /// [`NetlistError::MultipleDrivers`] if `output` is already driven.
    pub fn add_lut_driving(
        &mut self,
        name: impl Into<String>,
        function: TruthTable,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<CellId, NetlistError> {
        if function.arity() != inputs.len() {
            return Err(NetlistError::BadArity {
                arity: inputs.len(),
                max: function.arity(),
            });
        }
        for &n in inputs {
            self.net(n)?;
        }
        self.net(output)?;
        self.add_cell_raw(Cell {
            name: name.into(),
            kind: CellKind::Lut(function),
            inputs: inputs.to_vec(),
            output: Some(output),
        })
    }

    /// Adds a flip-flop driving an existing (driverless) net.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::add_ff`], plus
    /// [`NetlistError::MultipleDrivers`] if `output` is already driven.
    pub fn add_ff_driving(
        &mut self,
        name: impl Into<String>,
        init: bool,
        d: NetId,
        output: NetId,
    ) -> Result<CellId, NetlistError> {
        self.net(d)?;
        self.net(output)?;
        self.add_cell_raw(Cell {
            name: name.into(),
            kind: CellKind::Ff { init },
            inputs: vec![d],
            output: Some(output),
        })
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Looks up a live cell.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for tombstoned or
    /// out-of-range identifiers.
    pub fn cell(&self, id: CellId) -> Result<&Cell, NetlistError> {
        self.cells
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(NetlistError::UnknownCell(id))
    }

    fn cell_mut_raw(&mut self, id: CellId) -> Result<&mut Cell, NetlistError> {
        self.cells
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(NetlistError::UnknownCell(id))
    }

    /// Looks up a live net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] for tombstoned or
    /// out-of-range identifiers.
    pub fn net(&self, id: NetId) -> Result<&Net, NetlistError> {
        self.nets
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(NetlistError::UnknownNet(id))
    }

    fn net_mut_raw(&mut self, id: NetId) -> Result<&mut Net, NetlistError> {
        self.nets
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(NetlistError::UnknownNet(id))
    }

    /// The net driven by `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if `id` is dead, or
    /// [`NetlistError::KindMismatch`] if the cell drives nothing
    /// (primary outputs).
    pub fn cell_output(&self, id: CellId) -> Result<NetId, NetlistError> {
        self.cell(id)?.output.ok_or(NetlistError::KindMismatch {
            cell: id,
            expected: "driving cell",
        })
    }

    /// Finds a cell by name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cell_names.get(name).copied()
    }

    /// Finds a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Iterates over live cells in index order.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (CellId::new(i), c)))
    }

    /// Iterates over live nets in index order.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NetId::new(i), n)))
    }

    /// Primary inputs in creation order.
    pub fn primary_inputs(&self) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| matches!(c.kind, CellKind::Input))
            .map(|(id, _)| id)
            .collect()
    }

    /// Primary outputs in creation order.
    pub fn primary_outputs(&self) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| matches!(c.kind, CellKind::Output))
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of live cells.
    pub fn num_cells(&self) -> usize {
        self.cells().count()
    }

    /// Number of live nets.
    pub fn num_nets(&self) -> usize {
        self.nets().count()
    }

    /// Number of LUT cells.
    pub fn num_luts(&self) -> usize {
        self.cells()
            .filter(|(_, c)| matches!(c.kind, CellKind::Lut(_)))
            .count()
    }

    /// Number of flip-flop cells.
    pub fn num_ffs(&self) -> usize {
        self.cells().filter(|(_, c)| c.is_sequential()).count()
    }

    /// True if the design contains at least one flip-flop.
    pub fn is_sequential(&self) -> bool {
        self.cells().any(|(_, c)| c.is_sequential())
    }

    /// Upper bound (exclusive) of cell indices ever allocated.
    pub fn cell_capacity(&self) -> usize {
        self.cells.len()
    }

    /// Upper bound (exclusive) of net indices ever allocated.
    pub fn net_capacity(&self) -> usize {
        self.nets.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::of(self)
    }

    // ------------------------------------------------------------------
    // Editing
    // ------------------------------------------------------------------

    /// Reconnects input pin `pin` of `cell` to `new_net`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PinOutOfRange`] for a bad pin index and
    /// the usual unknown-id errors.
    pub fn set_pin(
        &mut self,
        cell: CellId,
        pin: usize,
        new_net: NetId,
    ) -> Result<(), NetlistError> {
        self.net(new_net)?;
        let old_net = {
            let c = self.cell(cell)?;
            *c.inputs.get(pin).ok_or(NetlistError::PinOutOfRange {
                cell,
                pin,
                arity: c.arity(),
            })?
        };
        if old_net == new_net {
            return Ok(());
        }
        let old = self.net_mut_raw(old_net)?;
        old.sinks.retain(|s| !(s.cell == cell && s.pin == pin));
        self.net_mut_raw(new_net)?.sinks.push(Sink { cell, pin });
        self.cell_mut_raw(cell)?.inputs[pin] = new_net;
        Ok(())
    }

    /// Replaces the truth table of a LUT cell.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KindMismatch`] if the cell is not a LUT
    /// or [`NetlistError::BadArity`] if the arity changes.
    pub fn set_lut_function(
        &mut self,
        cell: CellId,
        function: TruthTable,
    ) -> Result<(), NetlistError> {
        let c = self.cell(cell)?;
        match &c.kind {
            CellKind::Lut(old) => {
                if old.arity() != function.arity() {
                    return Err(NetlistError::BadArity {
                        arity: function.arity(),
                        max: old.arity(),
                    });
                }
            }
            _ => {
                return Err(NetlistError::KindMismatch {
                    cell,
                    expected: "lut",
                })
            }
        }
        self.cell_mut_raw(cell)?.kind = CellKind::Lut(function);
        Ok(())
    }

    /// Removes a cell, detaching it from all nets.
    ///
    /// The cell's output net survives (driverless) so that sinks can be
    /// rewired afterwards; callers that want it gone should follow up
    /// with [`Netlist::remove_net`] once the net is fully disconnected.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if the cell is already dead.
    pub fn remove_cell(&mut self, id: CellId) -> Result<Cell, NetlistError> {
        self.cell(id)?;
        let cell = self.cells[id.index()].take().expect("checked live above");
        self.cell_names.remove(&cell.name);
        for &net in &cell.inputs {
            if let Ok(n) = self.net_mut_raw(net) {
                n.sinks.retain(|s| s.cell != id);
            }
        }
        if let Some(out) = cell.output {
            if let Ok(n) = self.net_mut_raw(out) {
                n.driver = None;
            }
        }
        Ok(cell)
    }

    /// Removes a fully disconnected net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if the net is dead, or
    /// [`NetlistError::MultipleDrivers`]/[`NetlistError::Undriven`] are
    /// *not* used here: a connected net yields
    /// [`NetlistError::KindMismatch`]-free dedicated check via panic-free
    /// error [`NetlistError::Undriven`]. Concretely: removing a net that
    /// still has a driver or sinks returns [`NetlistError::Undriven`].
    pub fn remove_net(&mut self, id: NetId) -> Result<(), NetlistError> {
        let n = self.net(id)?;
        if n.driver.is_some() || !n.sinks.is_empty() {
            return Err(NetlistError::Undriven(id));
        }
        let n = self.nets[id.index()].take().expect("checked live above");
        self.net_names.remove(&n.name);
        Ok(())
    }

    /// Points `net`'s driver record at `cell` and `cell`'s output
    /// record at `net`, *without* detaching whatever drove the net
    /// before.
    ///
    /// This is a deliberate escape hatch around the builder API's
    /// single-driver guarantee, for import shims and design-rule-check
    /// fixtures that must represent an already-inconsistent netlist
    /// (the `drc` crate's multi-driven-net rule exists to catch
    /// exactly the state this creates). No synthesis or ECO path uses
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] /
    /// [`NetlistError::UnknownNet`] if either side is dead, or
    /// [`NetlistError::KindMismatch`] if the cell is an output pad
    /// (pads drive nothing).
    pub fn force_driver(&mut self, cell: CellId, net: NetId) -> Result<(), NetlistError> {
        self.net(net)?;
        if matches!(self.cell(cell)?.kind, CellKind::Output) {
            return Err(NetlistError::KindMismatch {
                cell,
                expected: "driving cell",
            });
        }
        self.cell_mut_raw(cell)?.output = Some(net);
        self.net_mut_raw(net)?.driver = Some(cell);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Analysis
    // ------------------------------------------------------------------

    /// Topological order of all live cells over *combinational* edges.
    ///
    /// Inputs and flip-flops act as sources; an edge runs from a net's
    /// driver to each sink unless the sink is a flip-flop D pin (the
    /// register boundary cuts the cycle).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] naming a cell on the
    /// cycle if the combinational subgraph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<CellId>, NetlistError> {
        let n = self.cells.len();
        let mut indegree = vec![0usize; n];
        let mut live = vec![false; n];
        for (id, cell) in self.cells() {
            live[id.index()] = true;
            if cell.is_sequential() || matches!(cell.kind, CellKind::Input) {
                continue;
            }
            // Combinational cells wait for all their fanins.
            indegree[id.index()] = cell.arity();
        }
        let mut ready: Vec<CellId> = self
            .cells()
            .filter(|(id, _)| indegree[id.index()] == 0 && live[id.index()])
            .map(|(id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(self.num_cells());
        let mut cursor = 0;
        while cursor < ready.len() {
            let id = ready[cursor];
            cursor += 1;
            order.push(id);
            let cell = self.cell(id)?;
            if let Some(out) = cell.output {
                for sink in &self.net(out)?.sinks {
                    let sc = self.cell(sink.cell)?;
                    if sc.is_sequential() || matches!(sc.kind, CellKind::Input) {
                        continue;
                    }
                    let d = &mut indegree[sink.cell.index()];
                    *d -= 1;
                    if *d == 0 {
                        ready.push(sink.cell);
                    }
                }
            }
        }
        if order.len() != self.num_cells() {
            let stuck = self
                .cells()
                .find(|(id, _)| indegree[id.index()] > 0)
                .map(|(id, _)| id)
                .unwrap_or(CellId::new(0));
            return Err(NetlistError::CombinationalLoop(stuck));
        }
        Ok(order)
    }

    /// Combinational logic level of every cell (inputs/FFs at level 0).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`].
    pub fn levels(&self) -> Result<Vec<usize>, NetlistError> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.cells.len()];
        for id in order {
            let cell = self.cell(id)?;
            if cell.is_sequential() || matches!(cell.kind, CellKind::Input) {
                continue;
            }
            // Primary outputs are zero-delay taps, not logic levels.
            let add = usize::from(!matches!(cell.kind, CellKind::Output));
            let mut max = 0;
            for &net in &cell.inputs {
                if let Some(drv) = self.net(net)?.driver {
                    max = max.max(level[drv.index()] + add);
                }
            }
            level[id.index()] = max;
        }
        Ok(level)
    }

    /// Maximum combinational depth (in LUT levels).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`].
    pub fn logic_depth(&self) -> Result<usize, NetlistError> {
        Ok(self.levels()?.into_iter().max().unwrap_or(0))
    }

    /// Transitive fanin cone of `seeds`, including the seeds.
    ///
    /// Traversal stops at primary inputs but *crosses* flip-flops, so
    /// the cone is the full structural support over any number of
    /// cycles — what error diagnosis needs.
    pub fn fanin_cone(&self, seeds: &[CellId]) -> Vec<CellId> {
        let mut seen = vec![false; self.cells.len()];
        let mut stack: Vec<CellId> = seeds.to_vec();
        let mut cone = Vec::new();
        while let Some(id) = stack.pop() {
            if id.index() >= seen.len() || seen[id.index()] {
                continue;
            }
            let Ok(cell) = self.cell(id) else { continue };
            seen[id.index()] = true;
            cone.push(id);
            for &net in &cell.inputs {
                if let Ok(n) = self.net(net) {
                    if let Some(drv) = n.driver {
                        stack.push(drv);
                    }
                }
            }
        }
        cone.sort_unstable();
        cone
    }

    /// Transitive fanout cone of `seeds`, including the seeds.
    pub fn fanout_cone(&self, seeds: &[CellId]) -> Vec<CellId> {
        let mut seen = vec![false; self.cells.len()];
        let mut stack: Vec<CellId> = seeds.to_vec();
        let mut cone = Vec::new();
        while let Some(id) = stack.pop() {
            if id.index() >= seen.len() || seen[id.index()] {
                continue;
            }
            let Ok(cell) = self.cell(id) else { continue };
            seen[id.index()] = true;
            cone.push(id);
            if let Some(out) = cell.output {
                if let Ok(n) = self.net(out) {
                    for s in &n.sinks {
                        stack.push(s.cell);
                    }
                }
            }
        }
        cone.sort_unstable();
        cone
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: undriven-but-consumed nets,
    /// LUT arity mismatches, dangling pin references, or combinational
    /// loops.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, net) in self.nets() {
            if net.driver.is_none() && !net.sinks.is_empty() {
                return Err(NetlistError::Undriven(id));
            }
            if let Some(drv) = net.driver {
                let c = self.cell(drv)?;
                if c.output != Some(id) {
                    return Err(NetlistError::MultipleDrivers(id));
                }
            }
            for s in &net.sinks {
                let c = self.cell(s.cell)?;
                if s.pin >= c.arity() {
                    return Err(NetlistError::PinOutOfRange {
                        cell: s.cell,
                        pin: s.pin,
                        arity: c.arity(),
                    });
                }
                if c.inputs[s.pin] != id {
                    return Err(NetlistError::UnknownNet(id));
                }
            }
        }
        for (id, cell) in self.cells() {
            if let CellKind::Lut(tt) = &cell.kind {
                if tt.arity() != cell.arity() {
                    return Err(NetlistError::BadArity {
                        arity: cell.arity(),
                        max: tt.arity(),
                    });
                }
            }
            for (pin, &net) in cell.inputs.iter().enumerate() {
                let n = self.net(net)?;
                if !n.sinks.iter().any(|s| s.cell == id && s.pin == pin) {
                    return Err(NetlistError::UnknownNet(net));
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain(len: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let mut prev = nl.cell_output(a).unwrap();
        let bnet = nl.cell_output(b).unwrap();
        for i in 0..len {
            let lut = nl
                .add_lut(format!("x{i}"), TruthTable::xor(2), &[prev, bnet])
                .unwrap();
            prev = nl.cell_output(lut).unwrap();
        }
        nl.add_output("y", prev).unwrap();
        nl
    }

    #[test]
    fn build_and_count() {
        let nl = xor_chain(4);
        assert_eq!(nl.num_luts(), 4);
        assert_eq!(nl.num_cells(), 7);
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.primary_outputs().len(), 1);
        assert!(!nl.is_sequential());
        nl.validate().unwrap();
    }

    #[test]
    fn logic_depth_of_chain() {
        let nl = xor_chain(5);
        assert_eq!(nl.logic_depth().unwrap(), 5);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_input("a").unwrap();
        assert!(matches!(
            nl.add_input("a"),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn lut_arity_must_match_inputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let n = nl.cell_output(a).unwrap();
        assert!(nl.add_lut("u", TruthTable::and(2), &[n]).is_err());
    }

    #[test]
    fn set_pin_rewires_connectivity() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let na = nl.cell_output(a).unwrap();
        let nb = nl.cell_output(b).unwrap();
        let u = nl.add_lut("u", TruthTable::buf(), &[na]).unwrap();
        nl.set_pin(u, 0, nb).unwrap();
        assert_eq!(nl.cell(u).unwrap().inputs[0], nb);
        assert_eq!(nl.net(na).unwrap().fanout(), 0);
        assert_eq!(nl.net(nb).unwrap().fanout(), 1);
        nl.validate().unwrap();
    }

    #[test]
    fn set_pin_same_net_is_noop() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.cell_output(a).unwrap();
        let u = nl.add_lut("u", TruthTable::buf(), &[na]).unwrap();
        nl.set_pin(u, 0, na).unwrap();
        assert_eq!(nl.net(na).unwrap().fanout(), 1);
    }

    #[test]
    fn remove_cell_detaches() {
        let mut nl = xor_chain(2);
        let x1 = nl.find_cell("x1").unwrap();
        let out_net = nl.cell_output(x1).unwrap();
        nl.remove_cell(x1).unwrap();
        assert!(nl.cell(x1).is_err());
        assert!(nl.net(out_net).unwrap().driver.is_none());
        // Validation now fails: y's net is undriven.
        assert!(nl.validate().is_err());
    }

    #[test]
    fn remove_net_requires_disconnection() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.cell_output(a).unwrap();
        assert!(nl.remove_net(na).is_err());
        nl.remove_cell(a).unwrap();
        nl.remove_net(na).unwrap();
        assert!(nl.net(na).is_err());
    }

    #[test]
    fn sequential_loop_is_legal() {
        let mut nl = Netlist::new("counter");
        let ff = {
            // Bootstrap: create the feedback net first via a dummy input.
            let seed = nl.add_net("d").unwrap();
            let ff = nl.add_ff("q", false, seed).unwrap();
            let q = nl.cell_output(ff).unwrap();
            let inv = nl.add_lut("inv", TruthTable::not(), &[q]).unwrap();
            let inv_out = nl.cell_output(inv).unwrap();
            nl.set_pin(ff, 0, inv_out).unwrap();
            ff
        };
        nl.add_output("out", nl.cell_output(ff).unwrap()).unwrap();
        // The only dangler is the bootstrap net `d`, which now has no sinks.
        nl.topo_order().unwrap();
        assert!(nl.is_sequential());
    }

    #[test]
    fn combinational_loop_detected() {
        let mut nl = Netlist::new("loop");
        let seed = nl.add_net("seed").unwrap();
        let u = nl.add_lut("u", TruthTable::buf(), &[seed]).unwrap();
        let v = nl
            .add_lut("v", TruthTable::buf(), &[nl.cell_output(u).unwrap()])
            .unwrap();
        nl.set_pin(u, 0, nl.cell_output(v).unwrap()).unwrap();
        assert!(matches!(
            nl.topo_order(),
            Err(NetlistError::CombinationalLoop(_))
        ));
    }

    #[test]
    fn cones() {
        let nl = xor_chain(3);
        let y = nl.find_cell("y").unwrap();
        let cone = nl.fanin_cone(&[y]);
        assert_eq!(cone.len(), nl.num_cells()); // everything feeds y
        let a = nl.find_cell("a").unwrap();
        let fan = nl.fanout_cone(&[a]);
        assert!(fan.contains(&y));
    }

    #[test]
    fn set_lut_function_checks_kind_and_arity() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.cell_output(a).unwrap();
        let u = nl.add_lut("u", TruthTable::buf(), &[na]).unwrap();
        assert!(nl.set_lut_function(u, TruthTable::and(2)).is_err());
        nl.set_lut_function(u, TruthTable::not()).unwrap();
        assert_eq!(nl.cell(u).unwrap().lut_function(), Some(&TruthTable::not()));
        assert!(nl.set_lut_function(a, TruthTable::not()).is_err());
    }
}

//! Aggregate netlist statistics.

use std::fmt;

use crate::cell::CellKind;
use crate::graph::Netlist;

/// Size and shape summary of a netlist.
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a")?;
/// let u = nl.add_lut("u", TruthTable::not(), &[nl.cell_output(a)?])?;
/// nl.add_output("y", nl.cell_output(u)?)?;
/// let s = nl.stats();
/// assert_eq!((s.inputs, s.outputs, s.luts, s.ffs), (1, 1, 1, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// LUT cells.
    pub luts: usize,
    /// Flip-flop cells.
    pub ffs: usize,
    /// Live nets.
    pub nets: usize,
    /// Total input pins across all cells (routing demand proxy).
    pub pins: usize,
    /// Combinational depth in LUT levels (0 if cyclic — see `Netlist::logic_depth`).
    pub depth: usize,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn of(nl: &Netlist) -> Self {
        let mut s = Self::default();
        for (_, cell) in nl.cells() {
            match &cell.kind {
                CellKind::Input => s.inputs += 1,
                CellKind::Output => s.outputs += 1,
                CellKind::Lut(_) => s.luts += 1,
                CellKind::Ff { .. } => s.ffs += 1,
            }
            s.pins += cell.arity();
        }
        s.nets = nl.num_nets();
        s.depth = nl.logic_depth().unwrap_or(0);
        s
    }

    /// Logic cells that occupy CLB resources (LUTs + FFs).
    pub fn logic_cells(&self) -> usize {
        self.luts + self.ffs
    }

    /// CLBs needed on an XC4000-style device (2 LUTs + 2 FFs per CLB;
    /// LUT/FF pairs on the same CLB are packed by the placer, so the
    /// bound is `max(luts, ffs)` halved, rounded up).
    pub fn clb_estimate(&self) -> usize {
        self.luts.max(self.ffs).div_ceil(2)
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PI, {} PO, {} LUT, {} FF, {} nets, depth {}",
            self.inputs, self.outputs, self.luts, self.ffs, self.nets, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::TruthTable;

    #[test]
    fn clb_estimate_packs_pairs() {
        let s = NetlistStats {
            luts: 10,
            ffs: 4,
            ..Default::default()
        };
        assert_eq!(s.clb_estimate(), 5);
        let s = NetlistStats {
            luts: 3,
            ffs: 8,
            ..Default::default()
        };
        assert_eq!(s.clb_estimate(), 4);
        assert_eq!(NetlistStats::default().clb_estimate(), 0);
    }

    #[test]
    fn stats_counts_pins_and_depth() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let na = nl.cell_output(a).unwrap();
        let nb = nl.cell_output(b).unwrap();
        let u = nl.add_lut("u", TruthTable::and(2), &[na, nb]).unwrap();
        let v = nl
            .add_lut("v", TruthTable::not(), &[nl.cell_output(u).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(v).unwrap()).unwrap();
        let s = nl.stats();
        assert_eq!(s.pins, 2 + 1 + 1); // and(2) + not(1) + output(1)
        assert_eq!(s.depth, 2);
        assert_eq!(s.logic_cells(), 2);
        assert!(s.to_string().contains("2 LUT"));
    }
}

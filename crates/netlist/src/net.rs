//! Nets: the edges of the netlist graph.

use std::fmt;

use crate::id::CellId;

/// A sink: one input pin of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sink {
    /// The consuming cell.
    pub cell: CellId,
    /// The input-pin index on that cell.
    pub pin: usize,
}

impl fmt::Display for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.cell, self.pin)
    }
}

/// A single net: one driver, many sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name; unique within the netlist.
    pub name: String,
    /// Driving cell, if connected.
    pub driver: Option<CellId>,
    /// Consuming pins.
    pub sinks: Vec<Sink>,
}

impl Net {
    /// Creates a named, unconnected net.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            driver: None,
            sinks: Vec::new(),
        }
    }

    /// Number of sinks.
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }

    /// True if the net drives no pins.
    pub fn is_dangling(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (fanout {})", self.name, self.fanout())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_net_is_dangling() {
        let n = Net::new("w");
        assert!(n.is_dangling());
        assert_eq!(n.fanout(), 0);
        assert!(n.driver.is_none());
    }

    #[test]
    fn fanout_counts_sinks() {
        let mut n = Net::new("w");
        n.sinks.push(Sink {
            cell: CellId::new(0),
            pin: 0,
        });
        n.sinks.push(Sink {
            cell: CellId::new(1),
            pin: 2,
        });
        assert_eq!(n.fanout(), 2);
        assert!(!n.is_dangling());
    }

    #[test]
    fn sink_display() {
        let s = Sink {
            cell: CellId::new(4),
            pin: 1,
        };
        assert_eq!(s.to_string(), "c4.1");
    }
}

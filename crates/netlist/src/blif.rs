//! Reader and writer for a practical subset of Berkeley BLIF.
//!
//! The MCNC benchmarks the paper evaluates are distributed in BLIF, so
//! the repository speaks it natively. Supported constructs:
//!
//! * `.model`, `.inputs`, `.outputs`, `.end`
//! * `.names` with up to six inputs and `0`/`1`/`-` cover rows
//! * `.latch <in> <out> [<type> <ctrl>] [<init>]` (clock is implicit)
//! * `#` comments and `\` line continuation
//!
//! Unsupported constructs (multiple `.model`s, `.subckt`, `.gate`)
//! produce a [`NetlistError::Parse`] rather than silent misreads.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::NetlistError;
use crate::graph::Netlist;
use crate::id::NetId;
use crate::logic::{TruthTable, MAX_ARITY};

/// Parses a BLIF document into a netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a line number for syntax
/// problems, and the usual construction errors for semantic ones
/// (duplicate drivers, arity overflow, ...).
///
/// # Example
///
/// ```
/// let src = "\
/// .model toy
/// .inputs a b
/// .outputs y
/// .names a b y
/// 11 1
/// .end
/// ";
/// let nl = netlist::blif::parse(src)?;
/// assert_eq!(nl.name(), "toy");
/// assert_eq!(nl.num_luts(), 1);
/// # Ok::<(), netlist::NetlistError>(())
/// ```
pub fn parse(source: &str) -> Result<Netlist, NetlistError> {
    Parser::new(source).run()
}

/// Serializes a netlist to BLIF.
///
/// LUT covers are written as explicit on-set rows; flip-flops become
/// `.latch` lines with init values.
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", nl.name());
    // Ports are written by *net* name so a reparse reconnects them.
    let inputs: Vec<String> = nl
        .primary_inputs()
        .iter()
        .filter_map(|&c| {
            let cell = nl.cell(c).ok()?;
            let net = cell.output?;
            nl.net(net).ok().map(|n| n.name.clone())
        })
        .collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = nl
        .primary_outputs()
        .iter()
        .filter_map(|&c| {
            let cell = nl.cell(c).ok()?;
            let net = cell.inputs.first().copied()?;
            nl.net(net).ok().map(|n| n.name.clone())
        })
        .collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for (_, cell) in nl.cells() {
        match &cell.kind {
            crate::cell::CellKind::Lut(tt) => {
                let mut names: Vec<String> = cell
                    .inputs
                    .iter()
                    .filter_map(|&n| nl.net(n).ok().map(|n| n.name.clone()))
                    .collect();
                if let Some(out_net) = cell.output {
                    if let Ok(n) = nl.net(out_net) {
                        names.push(n.name.clone());
                    }
                }
                let _ = writeln!(out, ".names {}", names.join(" "));
                let arity = tt.arity();
                for row in 0..(1u64 << arity) {
                    if tt.eval_row(row) {
                        let mut pat = String::with_capacity(arity);
                        for k in 0..arity {
                            pat.push(if row >> k & 1 == 1 { '1' } else { '0' });
                        }
                        let _ = writeln!(out, "{pat} 1");
                    }
                }
            }
            crate::cell::CellKind::Ff { init } => {
                let d = cell
                    .inputs
                    .first()
                    .and_then(|&n| nl.net(n).ok())
                    .map(|n| n.name.clone())
                    .unwrap_or_default();
                let q = cell
                    .output
                    .and_then(|n| nl.net(n).ok())
                    .map(|n| n.name.clone())
                    .unwrap_or_default();
                let _ = writeln!(out, ".latch {d} {q} {}", u8::from(*init));
            }
            _ => {}
        }
    }
    out.push_str(".end\n");
    out
}

/// A `.names` statement accumulated during parsing.
struct NamesStmt {
    line: usize,
    signals: Vec<String>,
    rows: Vec<(String, char)>,
}

/// A `.latch` statement accumulated during parsing.
struct LatchStmt {
    line: usize,
    d: String,
    q: String,
    init: bool,
}

struct Parser<'a> {
    source: &'a str,
    model: Option<String>,
    inputs: Vec<String>,
    outputs: Vec<String>,
    names: Vec<NamesStmt>,
    latches: Vec<LatchStmt>,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            source,
            model: None,
            inputs: Vec::new(),
            outputs: Vec::new(),
            names: Vec::new(),
            latches: Vec::new(),
        }
    }

    fn err(line: usize, message: impl Into<String>) -> NetlistError {
        NetlistError::Parse {
            line,
            message: message.into(),
        }
    }

    fn run(mut self) -> Result<Netlist, NetlistError> {
        // Join continuation lines, remembering original line numbers.
        let mut logical: Vec<(usize, String)> = Vec::new();
        let mut pending: Option<(usize, String)> = None;
        for (i, raw) in self.source.lines().enumerate() {
            let line_no = i + 1;
            let no_comment = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let trimmed = no_comment.trim_end();
            let (content, continued) = match trimmed.strip_suffix('\\') {
                Some(stripped) => (stripped, true),
                None => (trimmed, false),
            };
            match pending.take() {
                Some((start, mut acc)) => {
                    acc.push(' ');
                    acc.push_str(content);
                    if continued {
                        pending = Some((start, acc));
                    } else {
                        logical.push((start, acc));
                    }
                }
                None => {
                    if continued {
                        pending = Some((line_no, content.to_string()));
                    } else if !content.trim().is_empty() {
                        logical.push((line_no, content.to_string()));
                    }
                }
            }
        }
        if let Some((start, acc)) = pending {
            logical.push((start, acc));
        }

        let mut idx = 0;
        while idx < logical.len() {
            let (line_no, text) = &logical[idx];
            let line_no = *line_no;
            let mut tokens = text.split_whitespace();
            let head = tokens.next().unwrap_or("");
            let rest: Vec<String> = tokens.map(str::to_string).collect();
            match head {
                ".model" => {
                    if self.model.is_some() {
                        return Err(Self::err(line_no, "multiple .model statements"));
                    }
                    self.model = Some(rest.first().cloned().unwrap_or_else(|| "top".to_string()));
                }
                ".inputs" => self.inputs.extend(rest),
                ".outputs" => self.outputs.extend(rest),
                ".names" => {
                    if rest.is_empty() {
                        return Err(Self::err(line_no, ".names requires signals"));
                    }
                    let mut rows = Vec::new();
                    while idx + 1 < logical.len() && !logical[idx + 1].1.starts_with('.') {
                        idx += 1;
                        let (row_line, row_text) = &logical[idx];
                        let parts: Vec<&str> = row_text.split_whitespace().collect();
                        let (pattern, value) = match parts.as_slice() {
                            [v] if rest.len() == 1 => (String::new(), *v),
                            [p, v] => ((*p).to_string(), *v),
                            _ => {
                                return Err(Self::err(*row_line, "malformed cover row"));
                            }
                        };
                        let value = match value {
                            "0" => '0',
                            "1" => '1',
                            other => {
                                return Err(Self::err(
                                    *row_line,
                                    format!("cover output must be 0 or 1, got `{other}`"),
                                ))
                            }
                        };
                        rows.push((pattern, value));
                    }
                    self.names.push(NamesStmt {
                        line: line_no,
                        signals: rest,
                        rows,
                    });
                }
                ".latch" => {
                    if rest.len() < 2 {
                        return Err(Self::err(line_no, ".latch requires input and output"));
                    }
                    // Optional trailing init value; optional type+control
                    // tokens in between are accepted and ignored.
                    let init = match rest.last().map(String::as_str) {
                        Some("1") => true,
                        Some("0") | Some("2") | Some("3") => false,
                        _ => false,
                    };
                    self.latches.push(LatchStmt {
                        line: line_no,
                        d: rest[0].clone(),
                        q: rest[1].clone(),
                        init,
                    });
                }
                ".end" => break,
                ".exdc" | ".subckt" | ".gate" | ".mlatch" => {
                    return Err(Self::err(
                        line_no,
                        format!("unsupported construct `{head}`"),
                    ));
                }
                other if other.starts_with('.') => {
                    // Ignore benign extensions (.default_input_arrival etc.).
                }
                _ => {
                    return Err(Self::err(line_no, format!("unexpected token `{head}`")));
                }
            }
            idx += 1;
        }

        self.build()
    }

    fn build(self) -> Result<Netlist, NetlistError> {
        let mut nl = Netlist::new(self.model.unwrap_or_else(|| "top".to_string()));
        let mut nets: HashMap<String, NetId> = HashMap::new();
        let mut intern = |nl: &mut Netlist, name: &str| -> Result<NetId, NetlistError> {
            if let Some(&id) = nets.get(name) {
                return Ok(id);
            }
            let id = nl.add_net(name.to_string())?;
            nets.insert(name.to_string(), id);
            Ok(id)
        };

        for name in &self.inputs {
            let net = intern(&mut nl, name)?;
            nl.add_input_driving(format!("pi:{name}"), net)?;
        }
        for stmt in &self.latches {
            let d = intern(&mut nl, &stmt.d)?;
            let q = intern(&mut nl, &stmt.q)?;
            nl.add_ff_driving(format!("ff:{}", stmt.q), stmt.init, d, q)
                .map_err(|e| match e {
                    NetlistError::MultipleDrivers(n) => NetlistError::Parse {
                        line: stmt.line,
                        message: format!("latch output `{}` already driven ({n})", stmt.q),
                    },
                    other => other,
                })?;
        }
        for stmt in &self.names {
            let arity = stmt.signals.len() - 1;
            if arity > MAX_ARITY {
                return Err(Self::err(
                    stmt.line,
                    format!(".names with {arity} inputs exceeds the {MAX_ARITY}-input limit"),
                ));
            }
            let output_name = stmt.signals.last().expect("non-empty checked at parse");
            let input_ids: Vec<NetId> = stmt.signals[..arity]
                .iter()
                .map(|s| intern(&mut nl, s))
                .collect::<Result<_, _>>()?;
            let out_net = intern(&mut nl, output_name)?;
            let tt =
                cover_to_truth_table(arity, &stmt.rows).map_err(|m| Self::err(stmt.line, m))?;
            nl.add_lut_driving(format!("lut:{output_name}"), tt, &input_ids, out_net)
                .map_err(|e| match e {
                    NetlistError::MultipleDrivers(_) | NetlistError::DuplicateName(_) => {
                        NetlistError::Parse {
                            line: stmt.line,
                            message: format!("signal `{output_name}` has multiple drivers"),
                        }
                    }
                    other => other,
                })?;
        }
        for name in &self.outputs {
            let net = intern(&mut nl, name)?;
            nl.add_output(format!("po:{name}"), net)?;
        }
        Ok(nl)
    }
}

/// Converts BLIF cover rows into a truth table.
///
/// Rows whose output column is `1` form the on-set; rows with `0` form
/// the off-set (then the function is the complement of the uncovered
/// space). Mixing both in one cover is rejected, as in standard BLIF.
fn cover_to_truth_table(arity: usize, rows: &[(String, char)]) -> Result<TruthTable, String> {
    let on_rows: Vec<&(String, char)> = rows.iter().filter(|(_, v)| *v == '1').collect();
    let off_rows: Vec<&(String, char)> = rows.iter().filter(|(_, v)| *v == '0').collect();
    if !on_rows.is_empty() && !off_rows.is_empty() {
        return Err("cover mixes on-set and off-set rows".to_string());
    }
    let (set, polarity) = if off_rows.is_empty() {
        (on_rows, true)
    } else {
        (off_rows, false)
    };
    // Constant function: `.names y` with a single `1` (or `0`/empty) row.
    if arity == 0 {
        let value = polarity && !set.is_empty();
        return Ok(if value {
            TruthTable::constant1(0)
        } else {
            TruthTable::constant0(0)
        });
    }
    let mut covered = 0u64;
    for (pattern, _) in set {
        if pattern.len() != arity {
            return Err(format!(
                "cover row `{pattern}` has {} columns, expected {arity}",
                pattern.len()
            ));
        }
        // Expand don't-cares.
        let mut rows_acc = vec![0u64];
        for (k, ch) in pattern.chars().enumerate() {
            match ch {
                '0' => {}
                '1' => {
                    for r in &mut rows_acc {
                        *r |= 1 << k;
                    }
                }
                '-' => {
                    let with_one: Vec<u64> = rows_acc.iter().map(|r| r | 1 << k).collect();
                    rows_acc.extend(with_one);
                }
                other => return Err(format!("bad cover character `{other}`")),
            }
        }
        for r in rows_acc {
            covered |= 1 << r;
        }
    }
    let bits = if polarity {
        covered
    } else {
        // Off-set cover: function is 1 everywhere not covered.
        !covered
    };
    TruthTable::from_bits(arity, bits).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "\
# toy circuit
.model toy
.inputs a b c
.outputs y
.names a b ab
11 1
.names ab c y
1- 1
-1 1
.end
";

    #[test]
    fn parse_counts() {
        let nl = parse(TOY).unwrap();
        assert_eq!(nl.name(), "toy");
        assert_eq!(nl.num_luts(), 2);
        assert_eq!(nl.primary_inputs().len(), 3);
        nl.validate().unwrap();
    }

    #[test]
    fn parsed_function_is_correct() {
        let nl = parse(TOY).unwrap();
        let y_lut = nl.find_cell("lut:y").unwrap();
        let tt = *nl.cell(y_lut).unwrap().lut_function().unwrap();
        // y = ab OR c
        assert!(tt.eval(&[true, false]));
        assert!(tt.eval(&[false, true]));
        assert!(!tt.eval(&[false, false]));
    }

    #[test]
    fn latch_roundtrip() {
        let src = "\
.model seq
.inputs d
.outputs q
.latch d q 1
.end
";
        let nl = parse(src).unwrap();
        assert_eq!(nl.num_ffs(), 1);
        let ff = nl.find_cell("ff:q").unwrap();
        assert!(matches!(
            nl.cell(ff).unwrap().kind,
            crate::cell::CellKind::Ff { init: true }
        ));
        let text = write(&nl);
        let nl2 = parse(&text).unwrap();
        assert_eq!(nl2.num_ffs(), 1);
    }

    #[test]
    fn dont_care_expansion() {
        let src = "\
.model dc
.inputs a b c
.outputs y
.names a b c y
--1 1
.end
";
        let nl = parse(src).unwrap();
        let tt = *nl
            .cell(nl.find_cell("lut:y").unwrap())
            .unwrap()
            .lut_function()
            .unwrap();
        assert_eq!(tt, TruthTable::var(3, 2));
    }

    #[test]
    fn off_set_cover() {
        let src = "\
.model off
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let nl = parse(src).unwrap();
        let tt = *nl
            .cell(nl.find_cell("lut:y").unwrap())
            .unwrap()
            .lut_function()
            .unwrap();
        assert_eq!(tt, TruthTable::nand(2));
    }

    #[test]
    fn constant_names() {
        let src = "\
.model konst
.outputs y
.names y
1
.end
";
        let nl = parse(src).unwrap();
        let tt = *nl
            .cell(nl.find_cell("lut:y").unwrap())
            .unwrap()
            .lut_function()
            .unwrap();
        assert_eq!(tt, TruthTable::constant1(0));
    }

    #[test]
    fn mixed_cover_rejected() {
        let src = "\
.model bad
.inputs a
.outputs y
.names a y
1 1
0 0
.end
";
        assert!(matches!(parse(src), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let src = "\
.model bad
.inputs a b
.outputs y
.names a y
1 1
.names b y
1 1
.end
";
        assert!(matches!(parse(src), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn unsupported_construct_rejected() {
        let src = ".model bad\n.subckt foo a=b\n.end\n";
        assert!(matches!(
            parse(src),
            Err(NetlistError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let nl = parse(TOY).unwrap();
        let text = write(&nl);
        let nl2 = parse(&text).unwrap();
        assert_eq!(nl2.num_luts(), nl.num_luts());
        assert_eq!(nl2.primary_outputs().len(), 1);
        nl2.validate().unwrap();
    }

    #[test]
    fn continuation_lines() {
        let src = ".model cont\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let nl = parse(src).unwrap();
        assert_eq!(nl.primary_inputs().len(), 2);
    }
}

//! Design-hierarchy tree with back-annotation links (paper §5.1).
//!
//! Partitioning done throughout the design process creates a tree whose
//! leaves own netlist cells. Debugging changes made at any level are
//! traced through the sub-trees of the altered nodes down to the
//! affected cells — and, once the physical flow assigns cells to tiles,
//! down to the affected tiles. `Quick_ECO` stops this tracing at the
//! netlist (functional-block) level; tiling continues to the physical
//! level. Both consumers use this structure.

use std::fmt;

use crate::error::NetlistError;
use crate::id::CellId;

/// Identifier of a node in a [`Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HierarchyNodeId(u32);

impl HierarchyNodeId {
    /// Creates an identifier from a raw index.
    pub fn new(index: usize) -> Self {
        Self(index as u32)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HierarchyNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    parent: Option<HierarchyNodeId>,
    children: Vec<HierarchyNodeId>,
    cells: Vec<CellId>,
}

/// The module tree of a design, with per-node cell ownership.
///
/// ```
/// use netlist::Hierarchy;
/// use netlist::CellId;
///
/// let mut h = Hierarchy::new("top");
/// let alu = h.add_child(h.root(), "alu");
/// h.assign_cell(alu, CellId::new(0));
/// assert_eq!(h.path(alu).unwrap(), "top/alu");
/// assert_eq!(h.node_of_cell(CellId::new(0)), Some(alu));
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    nodes: Vec<Node>,
    /// cell index -> owning node (dense; grows on demand).
    owner: Vec<Option<HierarchyNodeId>>,
}

impl Hierarchy {
    /// Creates a hierarchy containing only the root module.
    pub fn new(top_name: impl Into<String>) -> Self {
        Self {
            nodes: vec![Node {
                name: top_name.into(),
                parent: None,
                children: Vec::new(),
                cells: Vec::new(),
            }],
            owner: Vec::new(),
        }
    }

    /// The root node.
    pub fn root(&self) -> HierarchyNodeId {
        HierarchyNodeId::new(0)
    }

    /// Adds a child module under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a valid node.
    pub fn add_child(
        &mut self,
        parent: HierarchyNodeId,
        name: impl Into<String>,
    ) -> HierarchyNodeId {
        assert!(parent.index() < self.nodes.len(), "bad parent node");
        let id = HierarchyNodeId::new(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            parent: Some(parent),
            children: Vec::new(),
            cells: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Assigns a cell to a node, replacing any previous assignment.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid node.
    pub fn assign_cell(&mut self, node: HierarchyNodeId, cell: CellId) {
        assert!(node.index() < self.nodes.len(), "bad node");
        if cell.index() >= self.owner.len() {
            self.owner.resize(cell.index() + 1, None);
        }
        if let Some(prev) = self.owner[cell.index()] {
            self.nodes[prev.index()].cells.retain(|&c| c != cell);
        }
        self.owner[cell.index()] = Some(node);
        self.nodes[node.index()].cells.push(cell);
    }

    /// The node owning `cell`, if assigned.
    pub fn node_of_cell(&self, cell: CellId) -> Option<HierarchyNodeId> {
        self.owner.get(cell.index()).copied().flatten()
    }

    /// The node's name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownHierarchyNode`] for bad ids.
    pub fn name(&self, node: HierarchyNodeId) -> Result<&str, NetlistError> {
        self.nodes
            .get(node.index())
            .map(|n| n.name.as_str())
            .ok_or(NetlistError::UnknownHierarchyNode(node.index()))
    }

    /// Slash-separated path from the root to `node`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownHierarchyNode`] for bad ids.
    pub fn path(&self, node: HierarchyNodeId) -> Result<String, NetlistError> {
        let mut parts = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            let n = self
                .nodes
                .get(id.index())
                .ok_or(NetlistError::UnknownHierarchyNode(id.index()))?;
            parts.push(n.name.clone());
            cur = n.parent;
        }
        parts.reverse();
        Ok(parts.join("/"))
    }

    /// Direct children of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownHierarchyNode`] for bad ids.
    pub fn children(&self, node: HierarchyNodeId) -> Result<&[HierarchyNodeId], NetlistError> {
        self.nodes
            .get(node.index())
            .map(|n| n.children.as_slice())
            .ok_or(NetlistError::UnknownHierarchyNode(node.index()))
    }

    /// Cells assigned directly to `node` (not descendants).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownHierarchyNode`] for bad ids.
    pub fn cells(&self, node: HierarchyNodeId) -> Result<&[CellId], NetlistError> {
        self.nodes
            .get(node.index())
            .map(|n| n.cells.as_slice())
            .ok_or(NetlistError::UnknownHierarchyNode(node.index()))
    }

    /// All cells in the subtree rooted at `node`.
    ///
    /// This is the §5.1 back-annotation trace: a change at `node`
    /// perturbs exactly these cells.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownHierarchyNode`] for bad ids.
    pub fn subtree_cells(&self, node: HierarchyNodeId) -> Result<Vec<CellId>, NetlistError> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let n = self
                .nodes
                .get(id.index())
                .ok_or(NetlistError::UnknownHierarchyNode(id.index()))?;
            out.extend_from_slice(&n.cells);
            stack.extend_from_slice(&n.children);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// The *functional block* of a cell: the ancestor that is a direct
    /// child of the root (or the root itself for top-level cells).
    ///
    /// This is the granularity at which `Quick_ECO` operates.
    pub fn functional_block_of(&self, cell: CellId) -> Option<HierarchyNodeId> {
        let mut cur = self.node_of_cell(cell)?;
        loop {
            let parent = self.nodes[cur.index()].parent?;
            if parent == self.root() {
                return Some(cur);
            }
            cur = parent;
        }
    }

    /// Number of nodes (including the root).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over every node id.
    pub fn iter(&self) -> impl Iterator<Item = HierarchyNodeId> {
        (0..self.nodes.len()).map(HierarchyNodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Hierarchy, HierarchyNodeId, HierarchyNodeId, HierarchyNodeId) {
        let mut h = Hierarchy::new("top");
        let alu = h.add_child(h.root(), "alu");
        let adder = h.add_child(alu, "adder");
        let ctrl = h.add_child(h.root(), "ctrl");
        h.assign_cell(adder, CellId::new(0));
        h.assign_cell(adder, CellId::new(1));
        h.assign_cell(ctrl, CellId::new(2));
        (h, alu, adder, ctrl)
    }

    #[test]
    fn path_construction() {
        let (h, _, adder, _) = sample();
        assert_eq!(h.path(adder).unwrap(), "top/alu/adder");
        assert_eq!(h.path(h.root()).unwrap(), "top");
    }

    #[test]
    fn subtree_collects_descendant_cells() {
        let (h, alu, _, _) = sample();
        assert_eq!(
            h.subtree_cells(alu).unwrap(),
            vec![CellId::new(0), CellId::new(1)]
        );
        assert_eq!(h.subtree_cells(h.root()).unwrap().len(), 3);
    }

    #[test]
    fn functional_block_is_root_child() {
        let (h, alu, _, ctrl) = sample();
        assert_eq!(h.functional_block_of(CellId::new(0)), Some(alu));
        assert_eq!(h.functional_block_of(CellId::new(2)), Some(ctrl));
        assert_eq!(h.functional_block_of(CellId::new(9)), None);
    }

    #[test]
    fn reassignment_moves_cell() {
        let (mut h, _, adder, ctrl) = sample();
        h.assign_cell(ctrl, CellId::new(0));
        assert_eq!(h.node_of_cell(CellId::new(0)), Some(ctrl));
        assert_eq!(h.cells(adder).unwrap(), &[CellId::new(1)]);
    }

    #[test]
    fn unknown_node_errors() {
        let (h, ..) = sample();
        assert!(h.path(HierarchyNodeId::new(99)).is_err());
        assert!(h.children(HierarchyNodeId::new(99)).is_err());
    }
}

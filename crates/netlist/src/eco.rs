//! Engineering-change operations (ECOs).
//!
//! An [`EcoOp`] is one atomic debugging change: the kind of edit a
//! designer makes between emulation iterations (paper §5). Applying an
//! ECO mutates the netlist *and* reports exactly which cells were
//! perturbed — the seed set the physical flow traces down to affected
//! tiles. This is the netlist half of the paper's error-correction
//! story; the physical half lives in the `tiling` crate.

use crate::error::NetlistError;
use crate::graph::Netlist;
use crate::id::{CellId, NetId};
use crate::logic::TruthTable;

/// One atomic engineering change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EcoOp {
    /// Replace the truth table of an existing LUT (same arity).
    ///
    /// The classic "small functional alteration" of late-stage debug.
    ChangeLutFunction {
        /// LUT to modify.
        cell: CellId,
        /// Replacement function.
        function: TruthTable,
    },
    /// Reconnect one input pin of a cell to a different net.
    RewirePin {
        /// Cell to modify.
        cell: CellId,
        /// Input pin index.
        pin: usize,
        /// New source net.
        net: NetId,
    },
    /// Insert a fresh LUT; its output net takes the cell name.
    AddLut {
        /// Unique instance name.
        name: String,
        /// Function of the new LUT.
        function: TruthTable,
        /// Source nets in pin order (length must equal arity).
        inputs: Vec<NetId>,
    },
    /// Insert a fresh flip-flop; its output net takes the cell name.
    AddFf {
        /// Unique instance name.
        name: String,
        /// Reset value.
        init: bool,
        /// D-input net.
        d: NetId,
    },
    /// Delete a cell (its output net survives, driverless).
    RemoveCell {
        /// Cell to delete.
        cell: CellId,
    },
}

impl EcoOp {
    /// Short tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::ChangeLutFunction { .. } => "change-lut",
            Self::RewirePin { .. } => "rewire",
            Self::AddLut { .. } => "add-lut",
            Self::AddFf { .. } => "add-ff",
            Self::RemoveCell { .. } => "remove",
        }
    }

    /// True if the op adds logic (consumes spare CLB resources).
    pub fn adds_logic(&self) -> bool {
        matches!(self, Self::AddLut { .. } | Self::AddFf { .. })
    }
}

/// Result of applying a batch of ECO operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EcoReport {
    /// Pre-existing cells whose function or connectivity changed.
    pub modified: Vec<CellId>,
    /// Newly created cells (need placement from tile slack).
    pub added: Vec<CellId>,
    /// Deleted cells (free their CLB resources).
    pub removed: Vec<CellId>,
}

impl EcoReport {
    /// Every cell perturbed by the change, in ascending order.
    ///
    /// This is the seed set for affected-tile identification.
    pub fn touched(&self) -> Vec<CellId> {
        let mut all: Vec<CellId> = self
            .modified
            .iter()
            .chain(&self.added)
            .chain(&self.removed)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Net CLB-resource growth: added minus removed logic cells.
    pub fn logic_delta(&self) -> isize {
        self.added.len() as isize - self.removed.len() as isize
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: EcoReport) {
        self.modified.extend(other.modified);
        self.added.extend(other.added);
        self.removed.extend(other.removed);
    }
}

/// Applies a single ECO to the netlist.
///
/// # Errors
///
/// Propagates the underlying graph-editing error; the netlist is left
/// unchanged on error (each op performs its fallible lookups before
/// mutating).
pub fn apply(nl: &mut Netlist, op: &EcoOp) -> Result<EcoReport, NetlistError> {
    let mut report = EcoReport::default();
    match op {
        EcoOp::ChangeLutFunction { cell, function } => {
            nl.set_lut_function(*cell, *function)?;
            report.modified.push(*cell);
        }
        EcoOp::RewirePin { cell, pin, net } => {
            nl.set_pin(*cell, *pin, *net)?;
            report.modified.push(*cell);
        }
        EcoOp::AddLut {
            name,
            function,
            inputs,
        } => {
            let id = nl.add_lut(name.clone(), *function, inputs)?;
            report.added.push(id);
            // Every sink that will consume the new net is untouched
            // until a follow-up RewirePin targets it.
        }
        EcoOp::AddFf { name, init, d } => {
            let id = nl.add_ff(name.clone(), *init, *d)?;
            report.added.push(id);
        }
        EcoOp::RemoveCell { cell } => {
            nl.remove_cell(*cell)?;
            report.removed.push(*cell);
        }
    }
    Ok(report)
}

/// Applies a batch of ECOs, stopping at the first failure.
///
/// # Errors
///
/// Returns the first op's error; earlier ops in the batch remain
/// applied (batches are not transactional — emulation debug applies
/// them incrementally exactly like a designer would).
pub fn apply_all(nl: &mut Netlist, ops: &[EcoOp]) -> Result<EcoReport, NetlistError> {
    let mut report = EcoReport::default();
    for op in ops {
        report.merge(apply(nl, op)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Netlist, CellId, NetId, NetId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let na = nl.cell_output(a).unwrap();
        let nb = nl.cell_output(b).unwrap();
        let u = nl.add_lut("u", TruthTable::and(2), &[na, nb]).unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        (nl, u, na, nb)
    }

    #[test]
    fn change_lut_function_reports_modified() {
        let (mut nl, u, ..) = fixture();
        let rep = apply(
            &mut nl,
            &EcoOp::ChangeLutFunction {
                cell: u,
                function: TruthTable::or(2),
            },
        )
        .unwrap();
        assert_eq!(rep.modified, vec![u]);
        assert_eq!(nl.cell(u).unwrap().lut_function(), Some(&TruthTable::or(2)));
        nl.validate().unwrap();
    }

    #[test]
    fn add_then_rewire_splices_logic() {
        let (mut nl, u, na, _) = fixture();
        // Insert an inverter between `a` and `u` — a two-op ECO.
        let rep = apply_all(
            &mut nl,
            &[
                EcoOp::AddLut {
                    name: "fix_inv".into(),
                    function: TruthTable::not(),
                    inputs: vec![na],
                },
                EcoOp::RewirePin {
                    cell: u,
                    pin: 0,
                    net: NetId::new(0),
                },
            ],
        );
        // The rewire above used a guessed net id; do it properly:
        let mut nl2 = fixture().0;
        let rep2 = apply(
            &mut nl2,
            &EcoOp::AddLut {
                name: "fix_inv".into(),
                function: TruthTable::not(),
                inputs: vec![NetId::new(0)],
            },
        )
        .unwrap();
        let inv = rep2.added[0];
        let inv_net = nl2.cell_output(inv).unwrap();
        let u2 = nl2.find_cell("u").unwrap();
        apply(
            &mut nl2,
            &EcoOp::RewirePin {
                cell: u2,
                pin: 0,
                net: inv_net,
            },
        )
        .unwrap();
        nl2.validate().unwrap();
        assert_eq!(nl2.cell(u2).unwrap().inputs[0], inv_net);
        // First (sloppy) batch also succeeded or failed cleanly.
        let _ = (rep, u);
    }

    #[test]
    fn remove_reports_removed() {
        let (mut nl, u, ..) = fixture();
        let rep = apply(&mut nl, &EcoOp::RemoveCell { cell: u }).unwrap();
        assert_eq!(rep.removed, vec![u]);
        assert_eq!(rep.logic_delta(), -1);
        assert!(nl.cell(u).is_err());
    }

    #[test]
    fn touched_deduplicates_and_sorts() {
        let rep = EcoReport {
            modified: vec![CellId::new(3), CellId::new(1)],
            added: vec![CellId::new(3)],
            removed: vec![CellId::new(0)],
        };
        assert_eq!(
            rep.touched(),
            vec![CellId::new(0), CellId::new(1), CellId::new(3)]
        );
    }

    #[test]
    fn failed_op_is_reported() {
        let (mut nl, ..) = fixture();
        let bad = EcoOp::ChangeLutFunction {
            cell: CellId::new(999),
            function: TruthTable::not(),
        };
        assert!(apply(&mut nl, &bad).is_err());
        nl.validate().unwrap();
    }

    #[test]
    fn op_metadata() {
        assert!(EcoOp::AddFf {
            name: "r".into(),
            init: false,
            d: NetId::new(0)
        }
        .adds_logic());
        assert!(!EcoOp::RemoveCell {
            cell: CellId::new(0)
        }
        .adds_logic());
        assert_eq!(
            EcoOp::RemoveCell {
                cell: CellId::new(0)
            }
            .tag(),
            "remove"
        );
    }
}

//! Cells: the nodes of the netlist graph.

use std::fmt;

use crate::id::NetId;
use crate::logic::TruthTable;

/// The functional kind of a [`Cell`].
///
/// Deliberately exhaustive: downstream crates (mapper, placer,
/// simulator) match on every variant, and a new cell kind *should* be
/// a breaking change for them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Primary input port. No input pins, one output net.
    Input,
    /// Primary output port. One input pin, no output net.
    Output,
    /// Combinational lookup table with the given function.
    Lut(TruthTable),
    /// D flip-flop clocked by the implicit global clock.
    Ff {
        /// Power-on / reset value of the register.
        init: bool,
    },
}

impl CellKind {
    /// Short lowercase tag used in reports and BLIF comments.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Input => "input",
            Self::Output => "output",
            Self::Lut(_) => "lut",
            Self::Ff { .. } => "ff",
        }
    }

    /// True for LUTs and flip-flops, which occupy CLB resources.
    pub fn is_logic(&self) -> bool {
        matches!(self, Self::Lut(_) | Self::Ff { .. })
    }

    /// True for primary inputs and outputs, which occupy IOB sites.
    pub fn is_io(&self) -> bool {
        matches!(self, Self::Input | Self::Output)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lut(tt) => write!(f, "lut{}", tt.arity()),
            other => f.write_str(other.tag()),
        }
    }
}

/// A single netlist node: an I/O port, a LUT, or a flip-flop.
///
/// Cells have at most one output net (`output`) and an ordered list of
/// input nets (`inputs`). LUT input pin `k` corresponds to truth-table
/// variable `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance name; unique within the netlist.
    pub name: String,
    /// Functional kind.
    pub kind: CellKind,
    /// Input nets in pin order.
    pub inputs: Vec<NetId>,
    /// Driven net, if the cell produces a value.
    pub output: Option<NetId>,
}

impl Cell {
    /// Number of input pins.
    pub fn arity(&self) -> usize {
        self.inputs.len()
    }

    /// True if the cell occupies CLB logic resources.
    pub fn is_logic(&self) -> bool {
        self.kind.is_logic()
    }

    /// The LUT truth table, if this cell is a LUT.
    pub fn lut_function(&self) -> Option<&TruthTable> {
        match &self.kind {
            CellKind::Lut(tt) => Some(tt),
            _ => None,
        }
    }

    /// True if the cell is sequential (breaks combinational paths).
    pub fn is_sequential(&self) -> bool {
        matches!(self.kind, CellKind::Ff { .. })
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lut_cell() -> Cell {
        Cell {
            name: "u1".into(),
            kind: CellKind::Lut(TruthTable::and(2)),
            inputs: vec![NetId::new(0), NetId::new(1)],
            output: Some(NetId::new(2)),
        }
    }

    #[test]
    fn kind_classification() {
        assert!(CellKind::Input.is_io());
        assert!(!CellKind::Input.is_logic());
        assert!(CellKind::Ff { init: false }.is_logic());
        assert!(CellKind::Lut(TruthTable::not()).is_logic());
    }

    #[test]
    fn lut_function_accessor() {
        let c = lut_cell();
        assert_eq!(c.lut_function(), Some(&TruthTable::and(2)));
        assert_eq!(c.arity(), 2);
        assert!(!c.is_sequential());
    }

    #[test]
    fn display_includes_kind() {
        assert_eq!(lut_cell().to_string(), "u1 (lut2)");
        let ff = Cell {
            name: "r0".into(),
            kind: CellKind::Ff { init: true },
            inputs: vec![NetId::new(0)],
            output: Some(NetId::new(1)),
        };
        assert_eq!(ff.to_string(), "r0 (ff)");
        assert!(ff.is_sequential());
    }
}

//! Truth-table logic functions of up to six inputs.
//!
//! A [`TruthTable`] stores the complete function of a small
//! combinational node as a 64-bit mask: bit `i` holds the output value
//! for the input assignment whose binary encoding is `i` (input 0 is
//! the least-significant bit of the row index). Six inputs is enough
//! for every pre-mapping node this project produces (DES S-boxes are
//! 6-input); the technology mapper decomposes anything wider than the
//! 4-input XC4000 LUTs.

use std::fmt;

use crate::error::NetlistError;

/// Maximum number of inputs representable by [`TruthTable`].
pub const MAX_ARITY: usize = 6;

/// A complete truth table over `arity` inputs (`arity <= 6`).
///
/// ```
/// use netlist::TruthTable;
/// let xor2 = TruthTable::xor(2);
/// assert!(xor2.eval(&[true, false]));
/// assert!(!xor2.eval(&[true, true]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TruthTable {
    bits: u64,
    arity: u8,
}

impl TruthTable {
    /// Creates a truth table from a raw bit mask.
    ///
    /// Bits above row `2^arity - 1` are cleared so equality works.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if `arity > 6`.
    pub fn from_bits(arity: usize, bits: u64) -> Result<Self, NetlistError> {
        if arity > MAX_ARITY {
            return Err(NetlistError::BadArity {
                arity,
                max: MAX_ARITY,
            });
        }
        Ok(Self {
            bits: bits & Self::row_mask(arity),
            arity: arity as u8,
        })
    }

    /// Creates a truth table by evaluating `f` on every input row.
    ///
    /// `f` receives the row index; input `k` of the row is bit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `arity > 6`.
    pub fn from_fn(arity: usize, f: impl Fn(u64) -> bool) -> Self {
        assert!(arity <= MAX_ARITY, "arity {arity} exceeds {MAX_ARITY}");
        let mut bits = 0u64;
        for row in 0..(1u64 << arity) {
            if f(row) {
                bits |= 1 << row;
            }
        }
        Self {
            bits,
            arity: arity as u8,
        }
    }

    /// The constant-0 function of the given arity.
    pub fn constant0(arity: usize) -> Self {
        Self::from_fn(arity, |_| false)
    }

    /// The constant-1 function of the given arity.
    pub fn constant1(arity: usize) -> Self {
        Self::from_fn(arity, |_| true)
    }

    /// The identity function on input `var` of `arity` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `var >= arity` or `arity > 6`.
    pub fn var(arity: usize, var: usize) -> Self {
        assert!(var < arity, "variable {var} out of range for arity {arity}");
        Self::from_fn(arity, |row| row >> var & 1 == 1)
    }

    /// The `arity`-input AND function.
    pub fn and(arity: usize) -> Self {
        Self::from_fn(arity, |row| row == (1 << arity) - 1)
    }

    /// The `arity`-input OR function.
    pub fn or(arity: usize) -> Self {
        Self::from_fn(arity, |row| row != 0)
    }

    /// The `arity`-input XOR (odd-parity) function.
    pub fn xor(arity: usize) -> Self {
        Self::from_fn(arity, |row| row.count_ones() % 2 == 1)
    }

    /// The `arity`-input NAND function.
    pub fn nand(arity: usize) -> Self {
        Self::and(arity).complement()
    }

    /// The `arity`-input NOR function.
    pub fn nor(arity: usize) -> Self {
        Self::or(arity).complement()
    }

    /// The 1-input inverter.
    pub fn not() -> Self {
        Self::from_fn(1, |row| row == 0)
    }

    /// The 1-input buffer.
    pub fn buf() -> Self {
        Self::var(1, 0)
    }

    /// 2:1 multiplexer: inputs `[a, b, sel]`, output `sel ? b : a`.
    pub fn mux2() -> Self {
        Self::from_fn(3, |row| {
            let (a, b, sel) = (row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1);
            if sel {
                b
            } else {
                a
            }
        })
    }

    /// Majority-of-three function.
    pub fn maj3() -> Self {
        Self::from_fn(3, |row| row.count_ones() >= 2)
    }

    /// Number of inputs.
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// Raw output mask (rows above `2^arity` are zero).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Evaluates the function on the given input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity(), "input count mismatch");
        let mut row = 0u64;
        for (k, &v) in inputs.iter().enumerate() {
            if v {
                row |= 1 << k;
            }
        }
        self.eval_row(row)
    }

    /// Evaluates the function on a packed input row.
    pub fn eval_row(&self, row: u64) -> bool {
        self.bits >> (row & (Self::row_count(self.arity()) - 1)) & 1 == 1
    }

    /// Returns the complement of this function.
    #[must_use]
    pub fn complement(&self) -> Self {
        Self {
            bits: !self.bits & Self::row_mask(self.arity()),
            arity: self.arity,
        }
    }

    /// True if the function ignores all of its inputs.
    pub fn is_constant(&self) -> bool {
        self.bits == 0 || self.bits == Self::row_mask(self.arity())
    }

    /// True if the function depends on input `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        if var >= self.arity() {
            return false;
        }
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// Number of inputs the function actually depends on.
    pub fn support_size(&self) -> usize {
        (0..self.arity()).filter(|&v| self.depends_on(v)).count()
    }

    /// The Shannon cofactor with input `var` fixed to `value`.
    ///
    /// The result has arity `self.arity() - 1`; remaining inputs keep
    /// their relative order.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.arity()` or the arity is zero.
    #[must_use]
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        let arity = self.arity();
        assert!(var < arity, "variable {var} out of range for arity {arity}");
        Self::from_fn(arity - 1, |row| {
            let low = row & ((1 << var) - 1);
            let high = (row >> var) << (var + 1);
            let fixed = if value { 1 << var } else { 0 };
            self.eval_row(low | high | fixed)
        })
    }

    /// Flips the output for one input row, returning the mutated table.
    ///
    /// This is the canonical "design error" used by the fault-injection
    /// machinery: a single-minterm functional bug.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 2^arity`.
    #[must_use]
    pub fn with_flipped_row(&self, row: u64) -> Self {
        assert!(row < Self::row_count(self.arity()), "row out of range");
        Self {
            bits: self.bits ^ (1 << row),
            arity: self.arity,
        }
    }

    /// Swaps two input variables, returning the permuted table.
    ///
    /// # Panics
    ///
    /// Panics if either variable index is out of range.
    #[must_use]
    pub fn with_swapped_vars(&self, a: usize, b: usize) -> Self {
        let arity = self.arity();
        assert!(a < arity && b < arity, "variable out of range");
        Self::from_fn(arity, |row| {
            let bit_a = row >> a & 1;
            let bit_b = row >> b & 1;
            let swapped = (row & !((1 << a) | (1 << b))) | (bit_a << b) | (bit_b << a);
            self.eval_row(swapped)
        })
    }

    /// Extends the table to a larger arity; new inputs are don't-cares.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if `new_arity` is larger than
    /// [`MAX_ARITY`] or smaller than the current arity.
    pub fn extended_to(&self, new_arity: usize) -> Result<Self, NetlistError> {
        if new_arity > MAX_ARITY || new_arity < self.arity() {
            return Err(NetlistError::BadArity {
                arity: new_arity,
                max: MAX_ARITY,
            });
        }
        Ok(Self::from_fn(new_arity, |row| {
            self.eval_row(row & (Self::row_count(self.arity()) - 1))
        }))
    }

    /// Number of rows (`2^arity`).
    fn row_count(arity: usize) -> u64 {
        1u64 << arity
    }

    /// Mask covering all valid rows.
    fn row_mask(arity: usize) -> u64 {
        if arity >= 6 {
            u64::MAX
        } else {
            (1u64 << (1 << arity)) - 1
        }
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lut{}:{:0width$b}",
            self.arity,
            self.bits,
            width = 1 << self.arity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates() {
        assert!(TruthTable::and(2).eval(&[true, true]));
        assert!(!TruthTable::and(2).eval(&[true, false]));
        assert!(TruthTable::or(3).eval(&[false, true, false]));
        assert!(!TruthTable::nor(2).eval(&[true, false]));
        assert!(TruthTable::nand(2).eval(&[true, false]));
        assert!(TruthTable::not().eval(&[false]));
        assert!(TruthTable::buf().eval(&[true]));
    }

    #[test]
    fn mux_selects() {
        let m = TruthTable::mux2();
        assert!(!m.eval(&[false, true, false])); // sel=0 -> a
        assert!(m.eval(&[false, true, true])); // sel=1 -> b
    }

    #[test]
    fn var_projects() {
        let v1 = TruthTable::var(3, 1);
        assert!(v1.eval(&[false, true, false]));
        assert!(!v1.eval(&[true, false, true]));
    }

    #[test]
    fn complement_involution() {
        let t = TruthTable::maj3();
        assert_eq!(t.complement().complement(), t);
    }

    #[test]
    fn constants_have_empty_support() {
        assert!(TruthTable::constant0(4).is_constant());
        assert!(TruthTable::constant1(4).is_constant());
        assert_eq!(TruthTable::constant1(4).support_size(), 0);
    }

    #[test]
    fn cofactor_of_and() {
        let and2 = TruthTable::and(2);
        assert_eq!(and2.cofactor(0, false), TruthTable::constant0(1));
        assert_eq!(and2.cofactor(0, true), TruthTable::var(1, 0));
    }

    #[test]
    fn depends_on_detects_support() {
        let v0 = TruthTable::var(4, 0);
        assert!(v0.depends_on(0));
        assert!(!v0.depends_on(1));
        assert_eq!(v0.support_size(), 1);
    }

    #[test]
    fn flipped_row_changes_exactly_one_entry() {
        let t = TruthTable::xor(3);
        let t2 = t.with_flipped_row(5);
        let diff = t.bits() ^ t2.bits();
        assert_eq!(diff, 1 << 5);
    }

    #[test]
    fn swap_vars_on_asymmetric_function() {
        // f = a AND NOT b
        let f = TruthTable::from_fn(2, |row| row & 1 == 1 && row >> 1 & 1 == 0);
        let g = f.with_swapped_vars(0, 1);
        assert!(g.eval(&[false, true]));
        assert!(!g.eval(&[true, false]));
    }

    #[test]
    fn extension_preserves_function() {
        let xor2 = TruthTable::xor(2);
        let ext = xor2.extended_to(4).unwrap();
        assert_eq!(ext.arity(), 4);
        assert!(ext.eval(&[true, false, true, true]));
        assert_eq!(ext.support_size(), 2);
    }

    #[test]
    fn arity_bounds_enforced() {
        assert!(TruthTable::from_bits(7, 0).is_err());
        assert!(TruthTable::xor(2).extended_to(1).is_err());
    }

    #[test]
    fn six_input_table_uses_full_mask() {
        let t = TruthTable::constant1(6);
        assert_eq!(t.bits(), u64::MAX);
    }

    #[test]
    fn display_shows_arity() {
        assert!(TruthTable::and(2).to_string().starts_with("lut2:"));
    }
}

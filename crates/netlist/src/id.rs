//! Index newtypes used throughout the netlist graph.
//!
//! All identifiers are plain dense indices into the owning
//! [`Netlist`](crate::Netlist)'s internal arenas. The newtypes exist to
//! keep cell, net, and hierarchy indices from being confused with one
//! another (C-NEWTYPE).

use std::fmt;

/// Identifier of a cell within a [`Netlist`](crate::Netlist).
///
/// ```
/// use netlist::CellId;
/// let id = CellId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "c3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(u32);

/// Identifier of a net within a [`Netlist`](crate::Netlist).
///
/// ```
/// use netlist::NetId;
/// assert_eq!(NetId::new(7).to_string(), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(u32);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Creates an identifier from a raw index.
            pub fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$ty> for usize {
            fn from(id: $ty) -> usize {
                id.index()
            }
        }
    };
}

impl_id!(CellId, "c");
impl_id!(NetId, "n");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        assert_eq!(CellId::new(42).index(), 42);
        assert_eq!(NetId::new(0).index(), 0);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(CellId::new(1).to_string(), "c1");
        assert_eq!(NetId::new(2).to_string(), "n2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert!(NetId::new(9) > NetId::new(3));
    }

    #[test]
    fn usize_conversion() {
        let id: usize = CellId::new(5).into();
        assert_eq!(id, 5);
    }
}

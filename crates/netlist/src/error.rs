//! Error type shared by all netlist operations.

use std::error::Error;
use std::fmt;

use crate::id::{CellId, NetId};

/// Errors produced by netlist construction, editing, and I/O.
///
/// ```
/// use netlist::{Netlist, NetlistError};
/// let nl = Netlist::new("t");
/// let err = nl.cell(netlist::CellId::new(9)).unwrap_err();
/// assert!(matches!(err, NetlistError::UnknownCell(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A cell identifier does not refer to a live cell.
    UnknownCell(CellId),
    /// A net identifier does not refer to a live net.
    UnknownNet(NetId),
    /// A pin index is out of range for the cell it addresses.
    PinOutOfRange {
        /// Cell whose pin was addressed.
        cell: CellId,
        /// Offending pin index.
        pin: usize,
        /// Number of input pins the cell actually has.
        arity: usize,
    },
    /// Two drivers were connected to the same net.
    MultipleDrivers(NetId),
    /// A net has no driver but is consumed by a sink.
    Undriven(NetId),
    /// The cell kind does not support the requested operation
    /// (e.g. changing the truth table of a flip-flop).
    KindMismatch {
        /// Cell that was addressed.
        cell: CellId,
        /// Human-readable description of the expected kind.
        expected: &'static str,
    },
    /// A truth-table arity is outside the supported range or does not
    /// match the number of connected inputs.
    BadArity {
        /// Requested arity.
        arity: usize,
        /// Maximum supported arity.
        max: usize,
    },
    /// A name was reused where uniqueness is required.
    DuplicateName(String),
    /// Combinational logic forms a cycle (not broken by a flip-flop).
    CombinationalLoop(CellId),
    /// Parse error in a BLIF source file.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A hierarchy node identifier does not exist.
    UnknownHierarchyNode(usize),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownCell(c) => write!(f, "unknown cell {c}"),
            Self::UnknownNet(n) => write!(f, "unknown net {n}"),
            Self::PinOutOfRange { cell, pin, arity } => {
                write!(
                    f,
                    "pin {pin} out of range for cell {cell} with {arity} inputs"
                )
            }
            Self::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            Self::Undriven(n) => write!(f, "net {n} is consumed but never driven"),
            Self::KindMismatch { cell, expected } => {
                write!(f, "cell {cell} is not a {expected}")
            }
            Self::BadArity { arity, max } => {
                write!(f, "arity {arity} exceeds supported maximum {max}")
            }
            Self::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            Self::CombinationalLoop(c) => {
                write!(f, "combinational loop through cell {c}")
            }
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::UnknownHierarchyNode(i) => write!(f, "unknown hierarchy node {i}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msg = NetlistError::UnknownCell(CellId::new(3)).to_string();
        assert_eq!(msg, "unknown cell c3");
        let msg = NetlistError::BadArity { arity: 9, max: 6 }.to_string();
        assert!(msg.contains("arity 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}

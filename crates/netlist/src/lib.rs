//! Gate-level netlist representation for the FPGA debug-tiling flow.
//!
//! This crate provides the logical view of a design as it exists after
//! synthesis and technology mapping: a graph of *cells* (LUTs,
//! flip-flops, and I/O ports) connected by *nets*. On top of the raw
//! graph it layers the two pieces of bookkeeping the DAC 2000 tiling
//! paper depends on:
//!
//! * a [`hierarchy::Hierarchy`] tree mirroring the HDL module structure,
//!   with back-annotation links from every cell to its hierarchy node
//!   (paper §5.1 — tracing debugging changes down the partition tree);
//! * [`eco`] engineering-change operations that mutate the netlist in
//!   place and report exactly which cells were perturbed, so the
//!   physical flow can confine re-place-and-route to the affected tiles.
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, TruthTable};
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut nl = Netlist::new("majority");
//! let a = nl.add_input("a")?;
//! let b = nl.add_input("b")?;
//! let c = nl.add_input("c")?;
//! let maj = nl.add_lut(
//!     "maj",
//!     TruthTable::from_fn(3, |bits| bits.count_ones() >= 2),
//!     &[nl.cell_output(a)?, nl.cell_output(b)?, nl.cell_output(c)?],
//! )?;
//! nl.add_output("y", nl.cell_output(maj)?)?;
//! assert_eq!(nl.num_luts(), 1);
//! nl.validate()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blif;
pub mod cell;
pub mod eco;
pub mod error;
pub mod graph;
pub mod hierarchy;
pub mod id;
pub mod logic;
pub mod net;
pub mod stats;

pub use cell::{Cell, CellKind};
pub use eco::{EcoOp, EcoReport};
pub use error::NetlistError;
pub use graph::Netlist;
pub use hierarchy::{Hierarchy, HierarchyNodeId};
pub use id::{CellId, NetId};
pub use logic::TruthTable;
pub use net::Net;
pub use stats::NetlistStats;

//! Placement database: which netlist cell occupies which BEL.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use netlist::CellId;

use crate::bel::BelLoc;

/// Errors from placement bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// Target BEL already hosts another cell.
    Occupied(BelLoc),
    /// The cell has no current location.
    NotPlaced(CellId),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Occupied(loc) => write!(f, "location {loc} is occupied"),
            Self::NotPlaced(c) => write!(f, "cell {c} is not placed"),
        }
    }
}

impl Error for PlacementError {}

/// A (partial) placement of netlist cells onto device BELs.
///
/// ```
/// use fpga::{BelLoc, ClbSlot, Placement};
/// use netlist::CellId;
///
/// let mut p = Placement::new(4);
/// let c = CellId::new(0);
/// p.place(c, BelLoc::clb(1, 1, ClbSlot::LutF))?;
/// assert_eq!(p.loc_of(c), Some(BelLoc::clb(1, 1, ClbSlot::LutF)));
/// # Ok::<(), fpga::placedb::PlacementError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Placement {
    locs: Vec<Option<BelLoc>>,
    occ: HashMap<BelLoc, CellId>,
}

impl Placement {
    /// Creates an empty placement able to hold `num_cells` cells.
    pub fn new(num_cells: usize) -> Self {
        Self {
            locs: vec![None; num_cells],
            occ: HashMap::new(),
        }
    }

    /// Number of cell slots (not all necessarily placed).
    pub fn capacity(&self) -> usize {
        self.locs.len()
    }

    /// Number of placed cells.
    pub fn num_placed(&self) -> usize {
        self.occ.len()
    }

    /// Location of a cell.
    pub fn loc_of(&self, cell: CellId) -> Option<BelLoc> {
        self.locs.get(cell.index()).copied().flatten()
    }

    /// Cell at a location.
    pub fn cell_at(&self, loc: BelLoc) -> Option<CellId> {
        self.occ.get(&loc).copied()
    }

    /// True if no cell occupies `loc`.
    pub fn is_free(&self, loc: BelLoc) -> bool {
        !self.occ.contains_key(&loc)
    }

    /// Places a cell at a free location (moving it if already placed).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::Occupied`] if another cell holds `loc`.
    pub fn place(&mut self, cell: CellId, loc: BelLoc) -> Result<(), PlacementError> {
        if let Some(&holder) = self.occ.get(&loc) {
            if holder == cell {
                return Ok(());
            }
            return Err(PlacementError::Occupied(loc));
        }
        if cell.index() >= self.locs.len() {
            self.locs.resize(cell.index() + 1, None);
        }
        if let Some(old) = self.locs[cell.index()] {
            self.occ.remove(&old);
        }
        self.locs[cell.index()] = Some(loc);
        self.occ.insert(loc, cell);
        Ok(())
    }

    /// Removes a cell from the placement.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NotPlaced`] if the cell has no
    /// location.
    pub fn unplace(&mut self, cell: CellId) -> Result<BelLoc, PlacementError> {
        let loc = self.loc_of(cell).ok_or(PlacementError::NotPlaced(cell))?;
        self.locs[cell.index()] = None;
        self.occ.remove(&loc);
        Ok(loc)
    }

    /// Swaps the locations of two placed cells.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NotPlaced`] if either is unplaced.
    pub fn swap(&mut self, a: CellId, b: CellId) -> Result<(), PlacementError> {
        let la = self.loc_of(a).ok_or(PlacementError::NotPlaced(a))?;
        let lb = self.loc_of(b).ok_or(PlacementError::NotPlaced(b))?;
        self.locs[a.index()] = Some(lb);
        self.locs[b.index()] = Some(la);
        self.occ.insert(la, b);
        self.occ.insert(lb, a);
        Ok(())
    }

    /// Iterates over placed `(cell, location)` pairs in cell order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, BelLoc)> + '_ {
        self.locs
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|loc| (CellId::new(i), loc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bel::ClbSlot;

    #[test]
    fn place_and_query() {
        let mut p = Placement::new(2);
        let c0 = CellId::new(0);
        let loc = BelLoc::clb(0, 0, ClbSlot::LutF);
        p.place(c0, loc).unwrap();
        assert_eq!(p.cell_at(loc), Some(c0));
        assert_eq!(p.num_placed(), 1);
        assert!(!p.is_free(loc));
    }

    #[test]
    fn occupied_rejected_idempotent_allowed() {
        let mut p = Placement::new(2);
        let loc = BelLoc::clb(0, 0, ClbSlot::LutF);
        p.place(CellId::new(0), loc).unwrap();
        assert_eq!(
            p.place(CellId::new(1), loc),
            Err(PlacementError::Occupied(loc))
        );
        // Re-placing the same cell at its own location is a no-op.
        p.place(CellId::new(0), loc).unwrap();
    }

    #[test]
    fn move_frees_old_location() {
        let mut p = Placement::new(1);
        let c = CellId::new(0);
        let a = BelLoc::clb(0, 0, ClbSlot::LutF);
        let b = BelLoc::clb(1, 0, ClbSlot::LutF);
        p.place(c, a).unwrap();
        p.place(c, b).unwrap();
        assert!(p.is_free(a));
        assert_eq!(p.loc_of(c), Some(b));
        assert_eq!(p.num_placed(), 1);
    }

    #[test]
    fn swap_exchanges() {
        let mut p = Placement::new(2);
        let (c0, c1) = (CellId::new(0), CellId::new(1));
        let a = BelLoc::clb(0, 0, ClbSlot::LutF);
        let b = BelLoc::clb(2, 2, ClbSlot::LutG);
        p.place(c0, a).unwrap();
        p.place(c1, b).unwrap();
        p.swap(c0, c1).unwrap();
        assert_eq!(p.loc_of(c0), Some(b));
        assert_eq!(p.cell_at(a), Some(c1));
    }

    #[test]
    fn unplace_errors_when_absent() {
        let mut p = Placement::new(1);
        assert!(p.unplace(CellId::new(0)).is_err());
    }

    #[test]
    fn grows_on_demand() {
        let mut p = Placement::new(0);
        p.place(CellId::new(7), BelLoc::clb(0, 0, ClbSlot::FfA))
            .unwrap();
        assert!(p.capacity() >= 8);
        assert_eq!(p.iter().count(), 1);
    }
}

//! The device: a CLB grid with perimeter IOBs and channel routing.

use std::error::Error;
use std::fmt;

use crate::bel::{BelLoc, ClbSlot, IobSide, IobSite};
use crate::coords::{Coord, Rect};

/// Errors produced when constructing or sizing a device.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// Grid dimensions or channel width of zero.
    EmptyDevice,
    /// The requested netlist does not fit any supported device.
    TooLarge {
        /// CLBs required.
        clbs: usize,
        /// I/O pads required.
        ios: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDevice => write!(f, "device dimensions must be nonzero"),
            Self::TooLarge { clbs, ios } => {
                write!(
                    f,
                    "design needs {clbs} CLBs / {ios} pads, exceeding the largest device"
                )
            }
        }
    }
}

impl Error for DeviceError {}

/// Largest supported grid edge (keeps RRG indices in `u32`).
pub const MAX_EDGE: u16 = 256;

/// An XC4000-style device.
///
/// ```
/// use fpga::Device;
/// let dev = Device::new(10, 10, 8, 2)?;
/// assert_eq!(dev.num_clbs(), 100);
/// assert_eq!(dev.lut_capacity(), 200);
/// assert_eq!(dev.io_capacity(), 80);
/// # Ok::<(), fpga::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    width: u16,
    height: u16,
    tracks: u16,
    iobs_per_pos: u8,
}

impl Device {
    /// Creates a device with the given CLB grid and channel width.
    ///
    /// `tracks` is the number of wires per routing channel and
    /// `iobs_per_pos` the number of pads sharing each perimeter
    /// position (XC4000 devices have two).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyDevice`] for zero dimensions and
    /// [`DeviceError::TooLarge`] for edges above [`MAX_EDGE`].
    pub fn new(
        width: u16,
        height: u16,
        tracks: u16,
        iobs_per_pos: u8,
    ) -> Result<Self, DeviceError> {
        if width == 0 || height == 0 || tracks == 0 || iobs_per_pos == 0 {
            return Err(DeviceError::EmptyDevice);
        }
        if width > MAX_EDGE || height > MAX_EDGE {
            return Err(DeviceError::TooLarge {
                clbs: width as usize * height as usize,
                ios: 0,
            });
        }
        Ok(Self {
            width,
            height,
            tracks,
            iobs_per_pos,
        })
    }

    /// Sizes a near-square device for a design.
    ///
    /// The grid is the smallest `w × h` rectangle (aspect ratio within
    /// 3:2) whose CLB capacity is at least `luts.max(ffs)/2 ×
    /// (1 + overhead)` and whose perimeter carries `ios` pads. This
    /// implements paper step 5: "re-place-and-route with resource
    /// slack" — the device deliberately leaves `overhead` spare logic
    /// capacity for future test-logic insertion. Allowing mild
    /// rectangles keeps the realized overhead close to the requested
    /// one (a square-only grid can overshoot 20% to ~40%).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::TooLarge`] if no supported device fits.
    pub fn for_design(
        luts: usize,
        ffs: usize,
        ios: usize,
        overhead: f64,
        tracks: u16,
    ) -> Result<Self, DeviceError> {
        let clbs_needed = luts.max(ffs).div_ceil(2).max(1);
        let with_slack = ((clbs_needed as f64) * (1.0 + overhead.max(0.0))).ceil() as usize;
        let iobs_per_pos = 2u8;
        let side = (with_slack as f64).sqrt();
        let mut best: Option<(usize, u16, u16)> = None; // (area, w, h)
        let lo = (side * 0.8).floor().max(1.0) as u16;
        let hi = ((side * 1.3).ceil() as u16).min(MAX_EDGE).max(lo + 1);
        for h in lo..=hi {
            let w = (with_slack.div_ceil(h as usize)).max(2) as u16;
            if w > MAX_EDGE {
                continue;
            }
            let aspect = f64::from(w.max(h)) / f64::from(w.min(h));
            if aspect > 1.5 {
                continue;
            }
            let io_cap = 2 * (w as usize + h as usize) * iobs_per_pos as usize;
            if io_cap < ios {
                continue;
            }
            let area = w as usize * h as usize;
            let better = match best {
                None => true,
                Some((ba, bw, bh)) => {
                    area < ba || (area == ba && (w.max(h) - w.min(h)) < (bw.max(bh) - bw.min(bh)))
                }
            };
            if better {
                best = Some((area, w, h));
            }
        }
        if let Some((_, w, h)) = best {
            return Self::new(w.max(2), h.max(2), tracks, iobs_per_pos);
        }
        // Fallback: grow a square until the pad budget fits.
        let mut edge = side.ceil().max(2.0) as u16;
        loop {
            if edge > MAX_EDGE {
                return Err(DeviceError::TooLarge {
                    clbs: with_slack,
                    ios,
                });
            }
            let io_cap = 4 * edge as usize * iobs_per_pos as usize;
            if (edge as usize * edge as usize) >= with_slack && io_cap >= ios {
                return Self::new(edge, edge, tracks, iobs_per_pos);
            }
            edge += 1;
        }
    }

    /// Grid width in CLB columns.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in CLB rows.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Wires per routing channel.
    pub fn tracks(&self) -> u16 {
        self.tracks
    }

    /// Pads per perimeter position.
    pub fn iobs_per_pos(&self) -> u8 {
        self.iobs_per_pos
    }

    /// Total number of CLBs.
    pub fn num_clbs(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total LUT slots (two per CLB).
    pub fn lut_capacity(&self) -> usize {
        2 * self.num_clbs()
    }

    /// Total flip-flop slots (two per CLB).
    pub fn ff_capacity(&self) -> usize {
        2 * self.num_clbs()
    }

    /// Total IOB sites.
    pub fn io_capacity(&self) -> usize {
        2 * (self.width as usize + self.height as usize) * self.iobs_per_pos as usize
    }

    /// The full-grid rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width - 1, self.height - 1)
    }

    /// True if `c` is a valid CLB coordinate.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Iterates over all CLB coordinates, row-major.
    pub fn clb_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// Iterates over the four BEL slots of one CLB.
    pub fn clb_slots(&self, c: Coord) -> impl Iterator<Item = BelLoc> {
        ClbSlot::ALL
            .into_iter()
            .map(move |slot| BelLoc::Clb { coord: c, slot })
    }

    /// Iterates over all CLB BELs on the device.
    pub fn all_clb_bels(&self) -> impl Iterator<Item = BelLoc> + '_ {
        self.clb_coords().flat_map(|c| self.clb_slots(c))
    }

    /// Iterates over all IOB sites, sides in N/S/E/W order.
    pub fn iob_sites(&self) -> impl Iterator<Item = IobSite> + '_ {
        let w = self.width;
        let h = self.height;
        let k = self.iobs_per_pos;
        IobSide::ALL.into_iter().flat_map(move |side| {
            let len = match side {
                IobSide::North | IobSide::South => w,
                IobSide::East | IobSide::West => h,
            };
            (0..len).flat_map(move |pos| (0..k).map(move |kk| IobSite { side, pos, k: kk }))
        })
    }

    /// Number of positions along the given side.
    pub fn side_len(&self, side: IobSide) -> u16 {
        match side {
            IobSide::North | IobSide::South => self.width,
            IobSide::East | IobSide::West => self.height,
        }
    }

    /// True if `site` exists on this device.
    pub fn has_iob(&self, site: IobSite) -> bool {
        site.pos < self.side_len(site.side) && site.k < self.iobs_per_pos
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xc4k-{}x{} ({} CLBs, {} tracks/channel)",
            self.width,
            self.height,
            self.num_clbs(),
            self.tracks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities() {
        let d = Device::new(8, 6, 8, 2).unwrap();
        assert_eq!(d.num_clbs(), 48);
        assert_eq!(d.lut_capacity(), 96);
        assert_eq!(d.ff_capacity(), 96);
        assert_eq!(d.io_capacity(), 56);
        assert_eq!(d.bounds(), Rect::new(0, 0, 7, 5));
    }

    #[test]
    fn zero_dimension_rejected() {
        assert_eq!(Device::new(0, 5, 8, 2), Err(DeviceError::EmptyDevice));
        assert_eq!(Device::new(5, 5, 0, 2), Err(DeviceError::EmptyDevice));
    }

    #[test]
    fn sizing_leaves_slack() {
        // 100 LUTs -> 50 CLBs -> with 20% slack -> 60 CLBs minimum.
        let d = Device::for_design(100, 20, 30, 0.20, 8).unwrap();
        assert!(d.num_clbs() >= 60);
        // The rectangle search keeps the realized overhead tight.
        assert!(d.num_clbs() <= 66, "{} CLBs is too loose", d.num_clbs());
        let aspect = f64::from(d.width().max(d.height())) / f64::from(d.width().min(d.height()));
        assert!(aspect <= 1.5);
        assert!(d.io_capacity() >= 30);
    }

    #[test]
    fn sizing_grows_for_io() {
        // Tiny logic but many pads forces a bigger grid.
        let d = Device::for_design(2, 0, 200, 0.20, 8).unwrap();
        assert!(d.io_capacity() >= 200);
        assert!(d.width() >= 25);
    }

    #[test]
    fn iob_enumeration_matches_capacity() {
        let d = Device::new(5, 4, 8, 2).unwrap();
        let sites: Vec<IobSite> = d.iob_sites().collect();
        assert_eq!(sites.len(), d.io_capacity());
        assert!(sites.iter().all(|&s| d.has_iob(s)));
        assert!(!d.has_iob(IobSite {
            side: IobSide::North,
            pos: 5,
            k: 0
        }));
        assert!(!d.has_iob(IobSite {
            side: IobSide::North,
            pos: 0,
            k: 2
        }));
    }

    #[test]
    fn bel_enumeration() {
        let d = Device::new(3, 3, 8, 2).unwrap();
        assert_eq!(d.all_clb_bels().count(), 36);
        assert_eq!(d.clb_coords().count(), 9);
    }

    #[test]
    fn display_mentions_size() {
        let d = Device::new(4, 4, 6, 2).unwrap();
        assert!(d.to_string().contains("4x4"));
    }
}

//! The routing-resource graph (RRG).
//!
//! Every physical routing resource is a node: horizontal and vertical
//! channel wires (one node per track per segment), CLB input and output
//! pins, and IOB pads. Edges are implied by the architecture and
//! enumerated on demand by [`RoutingGraph::neighbors`]:
//!
//! * *connection boxes*: output pins drive the four adjacent channel
//!   segments; channel segments reach the input pins of the two CLBs
//!   they border (full population, `Fc = 1`);
//! * *switch boxes*: at each channel intersection, same-track segments
//!   interconnect in the disjoint (XC4000-like) pattern;
//! * *pads*: IOB pins attach to the boundary channel alongside them.
//!
//! All wire nodes have capacity one, which is what makes routing a
//! negotiation problem for PathFinder.

use std::fmt;

use crate::bel::{BelLoc, ClbSlot, IobSide, IobSite};
use crate::coords::Coord;
use crate::device::Device;

/// Input pins per CLB (2 LUTs × 4 + 2 FF D-pins).
pub const CLB_IN_PINS: usize = 10;
/// Output pins per CLB (one per slot).
pub const CLB_OUT_PINS: usize = 4;

/// Dense identifier of an RRG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Decoded identity of an RRG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Horizontal wire in channel `y` (0..=H) spanning column `x`..`x+1`.
    ChanX {
        /// Segment column (0..W).
        x: u16,
        /// Channel row (0..=H).
        y: u16,
        /// Track within the channel.
        t: u16,
    },
    /// Vertical wire in channel `x` (0..=W) spanning row `y`..`y+1`.
    ChanY {
        /// Channel column (0..=W).
        x: u16,
        /// Segment row (0..H).
        y: u16,
        /// Track within the channel.
        t: u16,
    },
    /// CLB input pin.
    IPin {
        /// Owning CLB.
        coord: Coord,
        /// Pin index (0..[`CLB_IN_PINS`]); see [`ClbSlot::pin_base`].
        pin: u8,
    },
    /// CLB output pin (one per slot).
    OPin {
        /// Owning CLB.
        coord: Coord,
        /// Driving slot.
        slot: ClbSlot,
    },
    /// Bidirectional IOB pad pin.
    Iob(IobSite),
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ChanX { x, y, t } => write!(f, "chx({x},{y}).{t}"),
            Self::ChanY { x, y, t } => write!(f, "chy({x},{y}).{t}"),
            Self::IPin { coord, pin } => write!(f, "ipin{coord}.{pin}"),
            Self::OPin { coord, slot } => write!(f, "opin{coord}.{slot}"),
            Self::Iob(site) => write!(f, "{site}"),
        }
    }
}

/// Orthogonal-turn track choices at a switch point: `t` plus its two
/// cyclic neighbours (deduplicated for narrow channels). The relation
/// `|t - t'| mod T ∈ {0, 1, T-1}` is symmetric, so wire↔wire edges
/// stay bidirectional.
fn turn_tracks(t: u16, tracks: u16) -> impl Iterator<Item = u16> {
    let prev = (t + tracks - 1) % tracks;
    let next = (t + 1) % tracks;
    let mut v = [t, prev, next];
    v.sort_unstable();
    let mut out = [u16::MAX; 3];
    let mut n = 0;
    for x in v {
        if n == 0 || out[n - 1] != x {
            out[n] = x;
            n += 1;
        }
    }
    out.into_iter().take(n)
}

/// Per-node intrinsic delays (nanoseconds) of the model.
pub mod delay {
    /// Channel wire segment.
    pub const WIRE: f64 = 0.55;
    /// Connection-box hop into an input pin.
    pub const IPIN: f64 = 0.25;
    /// Output-pin buffer.
    pub const OPIN: f64 = 0.25;
    /// Pad delay.
    pub const IOB: f64 = 0.90;
}

/// The routing-resource graph of a [`Device`].
///
/// ```
/// use fpga::{Device, RoutingGraph};
/// let dev = Device::new(4, 4, 6, 2)?;
/// let rrg = RoutingGraph::new(&dev);
/// assert!(rrg.num_nodes() > 0);
/// // Every node id decodes and re-encodes to itself.
/// let node = rrg.node(fpga::NodeId::default_for_test(0));
/// let _ = node;
/// # Ok::<(), fpga::DeviceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutingGraph {
    w: usize,
    h: usize,
    t: usize,
    k: usize,
    chanx_base: usize,
    chany_base: usize,
    ipin_base: usize,
    opin_base: usize,
    iob_base: usize,
    total: usize,
}

impl NodeId {
    /// Constructs a raw node id. Exposed for doctests and serializers;
    /// prefer [`RoutingGraph`] encode methods.
    pub fn default_for_test(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl RoutingGraph {
    /// Builds the RRG for a device.
    pub fn new(device: &Device) -> Self {
        let w = device.width() as usize;
        let h = device.height() as usize;
        let t = device.tracks() as usize;
        let k = device.iobs_per_pos() as usize;
        let chanx_base = 0;
        let n_chanx = w * (h + 1) * t;
        let chany_base = chanx_base + n_chanx;
        let n_chany = (w + 1) * h * t;
        let ipin_base = chany_base + n_chany;
        let n_ipin = w * h * CLB_IN_PINS;
        let opin_base = ipin_base + n_ipin;
        let n_opin = w * h * CLB_OUT_PINS;
        let iob_base = opin_base + n_opin;
        let n_iob = 2 * (w + h) * k;
        Self {
            w,
            h,
            t,
            k,
            chanx_base,
            chany_base,
            ipin_base,
            opin_base,
            iob_base,
            total: iob_base + n_iob,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.total
    }

    // --------------------------------------------------------------
    // Encoding
    // --------------------------------------------------------------

    /// Id of a horizontal channel wire.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn chanx(&self, x: u16, y: u16, t: u16) -> NodeId {
        let (x, y, t) = (x as usize, y as usize, t as usize);
        assert!(
            x < self.w && y <= self.h && t < self.t,
            "chanx out of range"
        );
        NodeId((self.chanx_base + (y * self.w + x) * self.t + t) as u32)
    }

    /// Id of a vertical channel wire.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn chany(&self, x: u16, y: u16, t: u16) -> NodeId {
        let (x, y, t) = (x as usize, y as usize, t as usize);
        assert!(
            x <= self.w && y < self.h && t < self.t,
            "chany out of range"
        );
        NodeId((self.chany_base + (x * self.h + y) * self.t + t) as u32)
    }

    /// Id of a CLB input pin.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn ipin(&self, coord: Coord, pin: u8) -> NodeId {
        let (x, y, p) = (coord.x as usize, coord.y as usize, pin as usize);
        assert!(
            x < self.w && y < self.h && p < CLB_IN_PINS,
            "ipin out of range"
        );
        NodeId((self.ipin_base + (y * self.w + x) * CLB_IN_PINS + p) as u32)
    }

    /// Id of a CLB output pin.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn opin(&self, coord: Coord, slot: ClbSlot) -> NodeId {
        let (x, y) = (coord.x as usize, coord.y as usize);
        assert!(x < self.w && y < self.h, "opin out of range");
        NodeId((self.opin_base + (y * self.w + x) * CLB_OUT_PINS + slot.index()) as u32)
    }

    /// Id of an IOB pad pin.
    ///
    /// # Panics
    ///
    /// Panics if the site does not exist.
    pub fn iob(&self, site: IobSite) -> NodeId {
        let (pos, k) = (site.pos as usize, site.k as usize);
        assert!(k < self.k, "iob sub-site out of range");
        let side_base = match site.side {
            IobSide::North => {
                assert!(pos < self.w, "iob pos out of range");
                0
            }
            IobSide::South => {
                assert!(pos < self.w, "iob pos out of range");
                self.w * self.k
            }
            IobSide::East => {
                assert!(pos < self.h, "iob pos out of range");
                2 * self.w * self.k
            }
            IobSide::West => {
                assert!(pos < self.h, "iob pos out of range");
                2 * self.w * self.k + self.h * self.k
            }
        };
        NodeId((self.iob_base + side_base + pos * self.k + k) as u32)
    }

    /// The pin node through which `loc` drives its output.
    pub fn source_node(&self, loc: BelLoc) -> NodeId {
        match loc {
            BelLoc::Clb { coord, slot } => self.opin(coord, slot),
            BelLoc::Iob(site) => self.iob(site),
        }
    }

    /// The pin node through which input pin `pin` of `loc` is reached.
    ///
    /// For CLB slots, `pin` is the slot-relative input index (0..4 for
    /// LUTs, 0 for flip-flops); IOBs have a single pad node.
    pub fn sink_node(&self, loc: BelLoc, pin: usize) -> NodeId {
        match loc {
            BelLoc::Clb { coord, slot } => self.ipin(coord, (slot.pin_base() + pin) as u8),
            BelLoc::Iob(site) => self.iob(site),
        }
    }

    // --------------------------------------------------------------
    // Decoding
    // --------------------------------------------------------------

    /// Decodes a node id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this graph.
    pub fn node(&self, id: NodeId) -> NodeKind {
        let i = id.index();
        assert!(i < self.total, "node id out of range");
        if i < self.chany_base {
            let r = i - self.chanx_base;
            let t = r % self.t;
            let xy = r / self.t;
            NodeKind::ChanX {
                x: (xy % self.w) as u16,
                y: (xy / self.w) as u16,
                t: t as u16,
            }
        } else if i < self.ipin_base {
            let r = i - self.chany_base;
            let t = r % self.t;
            let xy = r / self.t;
            NodeKind::ChanY {
                x: (xy / self.h) as u16,
                y: (xy % self.h) as u16,
                t: t as u16,
            }
        } else if i < self.opin_base {
            let r = i - self.ipin_base;
            let p = r % CLB_IN_PINS;
            let xy = r / CLB_IN_PINS;
            NodeKind::IPin {
                coord: Coord::new((xy % self.w) as u16, (xy / self.w) as u16),
                pin: p as u8,
            }
        } else if i < self.iob_base {
            let r = i - self.opin_base;
            let s = r % CLB_OUT_PINS;
            let xy = r / CLB_OUT_PINS;
            NodeKind::OPin {
                coord: Coord::new((xy % self.w) as u16, (xy / self.w) as u16),
                slot: ClbSlot::from_index(s),
            }
        } else {
            let r = i - self.iob_base;
            let north = self.w * self.k;
            let south = 2 * self.w * self.k;
            let east = south + self.h * self.k;
            let (side, r) = if r < north {
                (IobSide::North, r)
            } else if r < south {
                (IobSide::South, r - north)
            } else if r < east {
                (IobSide::East, r - south)
            } else {
                (IobSide::West, r - east)
            };
            NodeKind::Iob(IobSite {
                side,
                pos: (r / self.k) as u16,
                k: (r % self.k) as u8,
            })
        }
    }

    /// Intrinsic traversal delay of a node, in nanoseconds.
    pub fn intrinsic_delay(&self, id: NodeId) -> f64 {
        match self.node(id) {
            NodeKind::ChanX { .. } | NodeKind::ChanY { .. } => delay::WIRE,
            NodeKind::IPin { .. } => delay::IPIN,
            NodeKind::OPin { .. } => delay::OPIN,
            NodeKind::Iob(_) => delay::IOB,
        }
    }

    /// Base congestion cost of a node (PathFinder `b_n`).
    pub fn base_cost(&self, id: NodeId) -> f64 {
        self.intrinsic_delay(id)
    }

    /// Geometric center of a node in CLB-grid units, for A* heuristics.
    pub fn center(&self, id: NodeId) -> (f32, f32) {
        match self.node(id) {
            NodeKind::ChanX { x, y, .. } => (x as f32 + 0.5, y as f32 - 0.5),
            NodeKind::ChanY { x, y, .. } => (x as f32 - 0.5, y as f32 + 0.5),
            NodeKind::IPin { coord, .. } | NodeKind::OPin { coord, .. } => {
                (coord.x as f32, coord.y as f32)
            }
            NodeKind::Iob(site) => match site.side {
                IobSide::North => (site.pos as f32, self.h as f32),
                IobSide::South => (site.pos as f32, -1.0),
                IobSide::East => (self.w as f32, site.pos as f32),
                IobSide::West => (-1.0, site.pos as f32),
            },
        }
    }

    /// Inclusive CLB-coordinate span touched by a node, as signed
    /// coordinates (`-1` and `width`/`height` occur at the boundary).
    ///
    /// A node lies strictly inside a tile rectangle iff its span does;
    /// wires whose span straddles the tile edge are *interface*
    /// resources.
    pub fn span(&self, id: NodeId) -> (i32, i32, i32, i32) {
        match self.node(id) {
            NodeKind::ChanX { x, y, .. } => (x as i32, y as i32 - 1, x as i32, y as i32),
            NodeKind::ChanY { x, y, .. } => (x as i32 - 1, y as i32, x as i32, y as i32),
            NodeKind::IPin { coord, .. } | NodeKind::OPin { coord, .. } => (
                coord.x as i32,
                coord.y as i32,
                coord.x as i32,
                coord.y as i32,
            ),
            NodeKind::Iob(site) => {
                let (x, y) = match site.side {
                    IobSide::North => (site.pos as i32, self.h as i32),
                    IobSide::South => (site.pos as i32, -1),
                    IobSide::East => (self.w as i32, site.pos as i32),
                    IobSide::West => (-1, site.pos as i32),
                };
                (x, y, x, y)
            }
        }
    }

    /// Appends all nodes reachable in one hop from `id` to `out`.
    ///
    /// The graph is directed: input pins are terminal, output pins are
    /// sources. Wire↔wire and wire↔pad edges are symmetric.
    pub fn neighbors(&self, id: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let (w, h, tr, k) = (self.w as u16, self.h as u16, self.t as u16, self.k as u8);
        match self.node(id) {
            NodeKind::OPin { coord, .. } => {
                let (x, y) = (coord.x, coord.y);
                for t in 0..tr {
                    out.push(self.chanx(x, y, t));
                    out.push(self.chanx(x, y + 1, t));
                    out.push(self.chany(x, y, t));
                    out.push(self.chany(x + 1, y, t));
                }
            }
            NodeKind::ChanX { x, y, t } => {
                // Switch points at (x, y) and (x+1, y). Straight-through
                // connections keep the track; orthogonal turns reach
                // tracks t-1, t, t+1 (the XC4000 switch matrix offers a
                // few alternatives per wire, not a bare disjoint box).
                if x > 0 {
                    out.push(self.chanx(x - 1, y, t));
                }
                if x + 1 < w {
                    out.push(self.chanx(x + 1, y, t));
                }
                for px in [x, x + 1] {
                    for tt in turn_tracks(t, tr) {
                        if y < h {
                            out.push(self.chany(px, y, tt));
                        }
                        if y > 0 {
                            out.push(self.chany(px, y - 1, tt));
                        }
                    }
                }
                // Connection boxes into the CLBs above and below.
                if y < h {
                    for p in 0..CLB_IN_PINS as u8 {
                        out.push(self.ipin(Coord::new(x, y), p));
                    }
                }
                if y > 0 {
                    for p in 0..CLB_IN_PINS as u8 {
                        out.push(self.ipin(Coord::new(x, y - 1), p));
                    }
                }
                // Boundary pads.
                if y == 0 {
                    for kk in 0..k {
                        out.push(self.iob(IobSite {
                            side: IobSide::South,
                            pos: x,
                            k: kk,
                        }));
                    }
                } else if y == h {
                    for kk in 0..k {
                        out.push(self.iob(IobSite {
                            side: IobSide::North,
                            pos: x,
                            k: kk,
                        }));
                    }
                }
            }
            NodeKind::ChanY { x, y, t } => {
                // Switch points at (x, y) and (x, y+1); see ChanX for
                // the turn-track pattern.
                if y > 0 {
                    out.push(self.chany(x, y - 1, t));
                }
                if y + 1 < h {
                    out.push(self.chany(x, y + 1, t));
                }
                for py in [y, y + 1] {
                    for tt in turn_tracks(t, tr) {
                        if x < w {
                            out.push(self.chanx(x, py, tt));
                        }
                        if x > 0 {
                            out.push(self.chanx(x - 1, py, tt));
                        }
                    }
                }
                // Connection boxes into the CLBs right and left.
                if x < w {
                    for p in 0..CLB_IN_PINS as u8 {
                        out.push(self.ipin(Coord::new(x, y), p));
                    }
                }
                if x > 0 {
                    for p in 0..CLB_IN_PINS as u8 {
                        out.push(self.ipin(Coord::new(x - 1, y), p));
                    }
                }
                // Boundary pads.
                if x == 0 {
                    for kk in 0..k {
                        out.push(self.iob(IobSite {
                            side: IobSide::West,
                            pos: y,
                            k: kk,
                        }));
                    }
                } else if x == w {
                    for kk in 0..k {
                        out.push(self.iob(IobSite {
                            side: IobSide::East,
                            pos: y,
                            k: kk,
                        }));
                    }
                }
            }
            NodeKind::IPin { .. } => {}
            NodeKind::Iob(site) => match site.side {
                IobSide::North => {
                    for t in 0..tr {
                        out.push(self.chanx(site.pos, h, t));
                    }
                }
                IobSide::South => {
                    for t in 0..tr {
                        out.push(self.chanx(site.pos, 0, t));
                    }
                }
                IobSide::East => {
                    for t in 0..tr {
                        out.push(self.chany(w, site.pos, t));
                    }
                }
                IobSide::West => {
                    for t in 0..tr {
                        out.push(self.chany(0, site.pos, t));
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> RoutingGraph {
        RoutingGraph::new(&Device::new(4, 3, 2, 2).unwrap())
    }

    #[test]
    fn encode_decode_roundtrip_everything() {
        let g = graph();
        for i in 0..g.num_nodes() {
            let id = NodeId(i as u32);
            let kind = g.node(id);
            let re = match kind {
                NodeKind::ChanX { x, y, t } => g.chanx(x, y, t),
                NodeKind::ChanY { x, y, t } => g.chany(x, y, t),
                NodeKind::IPin { coord, pin } => g.ipin(coord, pin),
                NodeKind::OPin { coord, slot } => g.opin(coord, slot),
                NodeKind::Iob(site) => g.iob(site),
            };
            assert_eq!(re, id, "roundtrip failed for {kind}");
        }
    }

    #[test]
    fn node_counts() {
        let g = graph();
        // 4*(3+1)*2 chanx + 5*3*2 chany + 12*10 ipin + 12*4 opin + 2*(4+3)*2 iob
        assert_eq!(g.num_nodes(), 32 + 30 + 120 + 48 + 28);
    }

    #[test]
    fn wire_wire_edges_are_symmetric() {
        let g = graph();
        let mut nbrs = Vec::new();
        let mut back = Vec::new();
        for i in 0..g.num_nodes() {
            let id = NodeId(i as u32);
            let kind = g.node(id);
            let is_wire = matches!(kind, NodeKind::ChanX { .. } | NodeKind::ChanY { .. });
            if !is_wire {
                continue;
            }
            g.neighbors(id, &mut nbrs);
            let snapshot = nbrs.clone();
            for &n in &snapshot {
                let nk = g.node(n);
                if matches!(nk, NodeKind::ChanX { .. } | NodeKind::ChanY { .. }) {
                    g.neighbors(n, &mut back);
                    assert!(back.contains(&id), "{nk} missing back-edge to {kind}");
                }
            }
        }
    }

    #[test]
    fn opin_reaches_all_four_channels() {
        let g = graph();
        let mut nbrs = Vec::new();
        g.neighbors(g.opin(Coord::new(1, 1), ClbSlot::LutF), &mut nbrs);
        // 4 adjacent channel segments × 2 tracks.
        assert_eq!(nbrs.len(), 8);
        assert!(nbrs.contains(&g.chanx(1, 1, 0)));
        assert!(nbrs.contains(&g.chanx(1, 2, 1)));
        assert!(nbrs.contains(&g.chany(1, 1, 0)));
        assert!(nbrs.contains(&g.chany(2, 1, 1)));
    }

    #[test]
    fn wire_reaches_adjacent_ipins() {
        let g = graph();
        let mut nbrs = Vec::new();
        g.neighbors(g.chanx(2, 1, 0), &mut nbrs);
        assert!(nbrs.contains(&g.ipin(Coord::new(2, 1), 0)));
        assert!(nbrs.contains(&g.ipin(Coord::new(2, 0), 9)));
    }

    #[test]
    fn ipins_are_terminal() {
        let g = graph();
        let mut nbrs = Vec::new();
        g.neighbors(g.ipin(Coord::new(0, 0), 3), &mut nbrs);
        assert!(nbrs.is_empty());
    }

    #[test]
    fn boundary_wires_reach_pads_and_back() {
        let g = graph();
        let mut nbrs = Vec::new();
        let south_site = IobSite {
            side: IobSide::South,
            pos: 2,
            k: 1,
        };
        g.neighbors(g.chanx(2, 0, 1), &mut nbrs);
        assert!(nbrs.contains(&g.iob(south_site)));
        g.neighbors(g.iob(south_site), &mut nbrs);
        assert!(nbrs.contains(&g.chanx(2, 0, 1)));
        let east_site = IobSite {
            side: IobSide::East,
            pos: 1,
            k: 0,
        };
        g.neighbors(g.iob(east_site), &mut nbrs);
        assert!(nbrs.contains(&g.chany(4, 1, 0)));
    }

    #[test]
    fn interior_wires_have_no_pads() {
        let g = graph();
        let mut nbrs = Vec::new();
        g.neighbors(g.chanx(1, 1, 0), &mut nbrs);
        assert!(nbrs.iter().all(|&n| !matches!(g.node(n), NodeKind::Iob(_))));
    }

    #[test]
    fn sink_and_source_mapping() {
        let g = graph();
        let loc = BelLoc::clb(2, 1, ClbSlot::LutG);
        assert_eq!(g.source_node(loc), g.opin(Coord::new(2, 1), ClbSlot::LutG));
        assert_eq!(g.sink_node(loc, 2), g.ipin(Coord::new(2, 1), 6));
        let ff = BelLoc::clb(0, 0, ClbSlot::FfB);
        assert_eq!(g.sink_node(ff, 0), g.ipin(Coord::new(0, 0), 9));
    }

    #[test]
    fn span_marks_boundary_wires() {
        let g = graph();
        // Channel y=0 wires dip below the grid.
        assert_eq!(g.span(g.chanx(1, 0, 0)), (1, -1, 1, 0));
        // Interior vertical wire straddles two columns.
        assert_eq!(g.span(g.chany(2, 1, 0)), (1, 1, 2, 1));
        // Pins sit inside one cell.
        assert_eq!(g.span(g.opin(Coord::new(3, 2), ClbSlot::FfA)), (3, 2, 3, 2));
    }

    #[test]
    fn delays_positive() {
        let g = graph();
        for i in 0..g.num_nodes() {
            assert!(g.intrinsic_delay(NodeId(i as u32)) > 0.0);
        }
    }
}

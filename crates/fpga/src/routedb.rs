//! Routing database: per-net route trees over RRG nodes.

use std::collections::BTreeSet;

use netlist::NetId;

use crate::rrg::{NodeId, RoutingGraph};

/// The physical route of one net.
///
/// Stored as one node path per sink, each starting at the net's source
/// pin and ending at that sink's input pin. Paths of the same net may
/// share prefixes (the route is a tree); shared nodes count once for
/// occupancy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteTree {
    /// One source→sink node path per sink, in the net's sink order.
    pub paths: Vec<Vec<NodeId>>,
}

impl RouteTree {
    /// All distinct nodes used by the net.
    pub fn nodes(&self) -> BTreeSet<NodeId> {
        self.paths.iter().flatten().copied().collect()
    }

    /// Total wire length (distinct nodes, a proxy for segments used).
    pub fn wirelength(&self) -> usize {
        self.nodes().len()
    }

    /// Delay from source to sink `k`: the sum of intrinsic node delays
    /// along that sink's path.
    ///
    /// Returns `None` if sink `k` has no path.
    pub fn sink_delay(&self, rrg: &RoutingGraph, k: usize) -> Option<f64> {
        let path = self.paths.get(k)?;
        if path.is_empty() {
            return None;
        }
        Some(path.iter().map(|&n| rrg.intrinsic_delay(n)).sum())
    }
}

/// All routes of a design, plus per-node occupancy counts.
///
/// ```
/// use fpga::{Device, RoutingGraph, Routing};
/// let dev = Device::new(3, 3, 4, 2)?;
/// let rrg = RoutingGraph::new(&dev);
/// let routing = Routing::new(rrg.num_nodes());
/// assert_eq!(routing.num_routed(), 0);
/// # Ok::<(), fpga::DeviceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Routing {
    routes: Vec<Option<RouteTree>>,
    occupancy: Vec<u16>,
}

impl Routing {
    /// Creates an empty routing over a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            routes: Vec::new(),
            occupancy: vec![0; num_nodes],
        }
    }

    /// Number of nets currently routed.
    pub fn num_routed(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }

    /// The route of a net, if present.
    pub fn route(&self, net: NetId) -> Option<&RouteTree> {
        self.routes.get(net.index()).and_then(Option::as_ref)
    }

    /// Occupancy count of a node.
    pub fn occupancy(&self, node: NodeId) -> u16 {
        self.occupancy.get(node.index()).copied().unwrap_or(0)
    }

    /// Installs (or replaces) the route of a net, updating occupancy.
    pub fn set_route(&mut self, net: NetId, tree: RouteTree) {
        self.clear_route(net);
        if net.index() >= self.routes.len() {
            self.routes.resize(net.index() + 1, None);
        }
        for node in tree.nodes() {
            self.occupancy[node.index()] += 1;
        }
        self.routes[net.index()] = Some(tree);
    }

    /// Removes the route of a net, releasing its nodes.
    ///
    /// Returns the removed tree, if any.
    pub fn clear_route(&mut self, net: NetId) -> Option<RouteTree> {
        let tree = self.routes.get_mut(net.index())?.take()?;
        for node in tree.nodes() {
            let o = &mut self.occupancy[node.index()];
            *o = o.saturating_sub(1);
        }
        Some(tree)
    }

    /// Nodes used by more than one net (routing conflicts).
    pub fn overused_nodes(&self) -> Vec<NodeId> {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, &o)| o > 1)
            .map(|(i, _)| NodeId::default_for_test(i as u32))
            .collect()
    }

    /// True if no node is used by more than one net.
    pub fn is_feasible(&self) -> bool {
        self.occupancy.iter().all(|&o| o <= 1)
    }

    /// Iterates over routed `(net, tree)` pairs in net order.
    pub fn iter(&self) -> impl Iterator<Item = (NetId, &RouteTree)> {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|t| (NetId::new(i), t)))
    }

    /// Total wirelength across all nets.
    pub fn total_wirelength(&self) -> usize {
        self.iter().map(|(_, t)| t.wirelength()).sum()
    }

    /// Channel-utilization summary over the wire nodes of `rrg`.
    pub fn congestion(&self, rrg: &crate::rrg::RoutingGraph) -> CongestionSummary {
        let mut s = CongestionSummary::default();
        for i in 0..rrg.num_nodes() {
            let id = NodeId::default_for_test(i as u32);
            if !matches!(
                rrg.node(id),
                crate::rrg::NodeKind::ChanX { .. } | crate::rrg::NodeKind::ChanY { .. }
            ) {
                continue;
            }
            s.wires += 1;
            let o = self.occupancy(id);
            if o > 0 {
                s.used += 1;
            }
            if o > 1 {
                s.overused += 1;
            }
        }
        s
    }
}

/// Wire-utilization summary (see [`Routing::congestion`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CongestionSummary {
    /// Total channel wire segments on the device.
    pub wires: usize,
    /// Segments carrying a signal.
    pub used: usize,
    /// Segments carrying more than one signal (conflicts).
    pub overused: usize,
}

impl CongestionSummary {
    /// Fraction of wire segments in use.
    pub fn utilization(&self) -> f64 {
        if self.wires == 0 {
            return 0.0;
        }
        self.used as f64 / self.wires as f64
    }
}

impl std::fmt::Display for CongestionSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} wires used ({:.1}%), {} overused",
            self.used,
            self.wires,
            100.0 * self.utilization(),
            self.overused
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    fn ids(raw: &[u32]) -> Vec<NodeId> {
        raw.iter().map(|&r| NodeId::default_for_test(r)).collect()
    }

    #[test]
    fn set_and_clear_updates_occupancy() {
        let mut r = Routing::new(10);
        let tree = RouteTree {
            paths: vec![ids(&[0, 1, 2]), ids(&[0, 1, 3])],
        };
        r.set_route(NetId::new(0), tree);
        assert_eq!(r.occupancy(NodeId::default_for_test(1)), 1); // shared prefix counts once
        assert_eq!(r.num_routed(), 1);
        r.clear_route(NetId::new(0));
        assert_eq!(r.occupancy(NodeId::default_for_test(1)), 0);
        assert!(r.is_feasible());
    }

    #[test]
    fn conflicts_detected() {
        let mut r = Routing::new(10);
        r.set_route(
            NetId::new(0),
            RouteTree {
                paths: vec![ids(&[4, 5])],
            },
        );
        r.set_route(
            NetId::new(1),
            RouteTree {
                paths: vec![ids(&[5, 6])],
            },
        );
        assert!(!r.is_feasible());
        assert_eq!(r.overused_nodes(), ids(&[5]));
    }

    #[test]
    fn replace_route_releases_old_nodes() {
        let mut r = Routing::new(10);
        r.set_route(
            NetId::new(0),
            RouteTree {
                paths: vec![ids(&[1, 2])],
            },
        );
        r.set_route(
            NetId::new(0),
            RouteTree {
                paths: vec![ids(&[3, 4])],
            },
        );
        assert_eq!(r.occupancy(NodeId::default_for_test(1)), 0);
        assert_eq!(r.occupancy(NodeId::default_for_test(3)), 1);
        assert_eq!(r.num_routed(), 1);
    }

    #[test]
    fn sink_delay_sums_path() {
        let dev = Device::new(3, 3, 2, 2).unwrap();
        let rrg = RoutingGraph::new(&dev);
        let tree = RouteTree {
            paths: vec![vec![
                rrg.opin(crate::Coord::new(0, 0), crate::ClbSlot::LutF),
                rrg.chanx(0, 1, 0),
                rrg.ipin(crate::Coord::new(1, 0), 0),
            ]],
        };
        let d = tree.sink_delay(&rrg, 0).unwrap();
        assert!((d - (0.25 + 0.55 + 0.25)).abs() < 1e-9);
        assert_eq!(tree.sink_delay(&rrg, 1), None);
        assert_eq!(tree.wirelength(), 3);
    }

    #[test]
    fn congestion_summary_counts_wires() {
        let dev = Device::new(3, 3, 2, 2).unwrap();
        let rrg = RoutingGraph::new(&dev);
        let mut r = Routing::new(rrg.num_nodes());
        let empty = r.congestion(&rrg);
        assert_eq!(empty.used, 0);
        assert!(empty.wires > 0);
        assert_eq!(empty.utilization(), 0.0);
        r.set_route(
            NetId::new(0),
            RouteTree {
                paths: vec![vec![rrg.chanx(0, 1, 0), rrg.chanx(1, 1, 0)]],
            },
        );
        let c = r.congestion(&rrg);
        assert_eq!(c.used, 2);
        assert_eq!(c.overused, 0);
        assert!(c.to_string().contains("2/"));
    }

    #[test]
    fn total_wirelength_accumulates() {
        let mut r = Routing::new(10);
        r.set_route(
            NetId::new(0),
            RouteTree {
                paths: vec![ids(&[0, 1])],
            },
        );
        r.set_route(
            NetId::new(2),
            RouteTree {
                paths: vec![ids(&[2, 3, 4])],
            },
        );
        assert_eq!(r.total_wirelength(), 5);
        assert_eq!(r.iter().count(), 2);
    }
}

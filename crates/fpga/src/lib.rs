//! Xilinx XC4000-style FPGA device model.
//!
//! The paper's experiments all run on the XC4000 family: an array of
//! configurable logic blocks (CLBs), each holding two 4-input lookup
//! tables and two flip-flops, surrounded by I/O blocks (IOBs) and
//! connected by segmented channel routing. This crate models that
//! architecture closely enough for every physical-design question the
//! tiling technique asks:
//!
//! * [`device::Device`] — the CLB/IOB grid and its capacities;
//! * [`rrg`] — the routing-resource graph (channel tracks, switch
//!   boxes, connection boxes, cell pins) that the router negotiates
//!   over;
//! * [`placedb::Placement`] — which netlist cell sits on which BEL;
//! * [`routedb::Routing`] — per-net route trees over RRG nodes;
//! * [`timing`] — a unit-delay-per-resource model and static timing
//!   analysis, used for Table 1's timing-overhead column.
//!
//! The model is *not* bit-exact Xilinx silicon: delays are idealized
//! and switch patterns simplified (disjoint switch boxes, full
//! connection boxes). The paper's results are all relative quantities
//! measured on the same substrate, so this preserves every comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bel;
pub mod coords;
pub mod device;
pub mod placedb;
pub mod routedb;
pub mod rrg;
pub mod timing;

pub use bel::{BelLoc, ClbSlot, IobSide, IobSite};
pub use coords::{Coord, Rect};
pub use device::{Device, DeviceError};
pub use placedb::Placement;
pub use routedb::{RouteTree, Routing};
pub use rrg::{NodeId, NodeKind, RoutingGraph};
pub use timing::{DelayModel, TimingReport};

//! Basic elements (BELs): the placeable slots of the device.

use std::fmt;

use crate::coords::Coord;

/// One of the four placeable slots inside a CLB.
///
/// An XC4000 CLB contains two 4-input lookup tables (F and G) and two
/// flip-flops. The paper's CLB counts assume this packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClbSlot {
    /// First 4-input LUT (the "F" function generator).
    LutF,
    /// Second 4-input LUT (the "G" function generator).
    LutG,
    /// First flip-flop.
    FfA,
    /// Second flip-flop.
    FfB,
}

impl ClbSlot {
    /// All slots in canonical order.
    pub const ALL: [ClbSlot; 4] = [ClbSlot::LutF, ClbSlot::LutG, ClbSlot::FfA, ClbSlot::FfB];

    /// Dense index 0..4.
    pub fn index(self) -> usize {
        match self {
            Self::LutF => 0,
            Self::LutG => 1,
            Self::FfA => 2,
            Self::FfB => 3,
        }
    }

    /// Slot from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// True for the two LUT slots.
    pub fn is_lut(self) -> bool {
        matches!(self, Self::LutF | Self::LutG)
    }

    /// True for the two flip-flop slots.
    pub fn is_ff(self) -> bool {
        !self.is_lut()
    }

    /// Number of input pins the slot offers (4 for LUTs, 1 for FFs).
    pub fn num_inputs(self) -> usize {
        if self.is_lut() {
            4
        } else {
            1
        }
    }

    /// First input-pin index of this slot within the CLB's pin space.
    ///
    /// CLB input pins are numbered: LUT F gets 0..4, LUT G gets 4..8,
    /// FF A gets 8, FF B gets 9.
    pub fn pin_base(self) -> usize {
        match self {
            Self::LutF => 0,
            Self::LutG => 4,
            Self::FfA => 8,
            Self::FfB => 9,
        }
    }
}

impl fmt::Display for ClbSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::LutF => "F",
            Self::LutG => "G",
            Self::FfA => "FFa",
            Self::FfB => "FFb",
        };
        f.write_str(s)
    }
}

/// Side of the device perimeter an IOB sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IobSide {
    /// Along the y = height channel (top edge).
    North,
    /// Along the y = 0 channel (bottom edge).
    South,
    /// Along the x = width channel (right edge).
    East,
    /// Along the x = 0 channel (left edge).
    West,
}

impl IobSide {
    /// All sides in canonical order.
    pub const ALL: [IobSide; 4] = [IobSide::North, IobSide::South, IobSide::East, IobSide::West];
}

impl fmt::Display for IobSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::North => "N",
            Self::South => "S",
            Self::East => "E",
            Self::West => "W",
        };
        f.write_str(s)
    }
}

/// One I/O block site on the perimeter.
///
/// `pos` indexes along the side (a column for north/south, a row for
/// east/west); `k` distinguishes the multiple IOBs that share one
/// position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IobSite {
    /// Perimeter side.
    pub side: IobSide,
    /// Position along the side.
    pub pos: u16,
    /// Sub-site index at this position.
    pub k: u8,
}

impl fmt::Display for IobSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IOB-{}{}#{}", self.side, self.pos, self.k)
    }
}

/// A placement location: either a CLB slot or an IOB site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BelLoc {
    /// A slot inside the CLB at `coord`.
    Clb {
        /// CLB grid position.
        coord: Coord,
        /// Slot within the CLB.
        slot: ClbSlot,
    },
    /// A perimeter IOB.
    Iob(IobSite),
}

impl BelLoc {
    /// Convenience constructor for CLB slots.
    pub fn clb(x: u16, y: u16, slot: ClbSlot) -> Self {
        Self::Clb {
            coord: Coord::new(x, y),
            slot,
        }
    }

    /// The CLB coordinate, if this is a CLB slot.
    pub fn coord(&self) -> Option<Coord> {
        match self {
            Self::Clb { coord, .. } => Some(*coord),
            Self::Iob(_) => None,
        }
    }

    /// A representative grid coordinate for distance computations.
    ///
    /// IOBs map to the nearest CLB coordinate on their side, clamped
    /// to a `width × height` grid.
    pub fn proxy_coord(&self, width: u16, height: u16) -> Coord {
        match self {
            Self::Clb { coord, .. } => *coord,
            Self::Iob(site) => match site.side {
                IobSide::North => Coord::new(site.pos.min(width - 1), height - 1),
                IobSide::South => Coord::new(site.pos.min(width - 1), 0),
                IobSide::East => Coord::new(width - 1, site.pos.min(height - 1)),
                IobSide::West => Coord::new(0, site.pos.min(height - 1)),
            },
        }
    }
}

impl fmt::Display for BelLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Clb { coord, slot } => write!(f, "CLB{coord}.{slot}"),
            Self::Iob(site) => write!(f, "{site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_indexing_roundtrip() {
        for (i, s) in ClbSlot::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(ClbSlot::from_index(i), *s);
        }
    }

    #[test]
    fn slot_pin_layout_is_disjoint() {
        assert_eq!(ClbSlot::LutF.pin_base(), 0);
        assert_eq!(ClbSlot::LutG.pin_base(), 4);
        assert_eq!(ClbSlot::FfA.pin_base(), 8);
        assert_eq!(ClbSlot::FfB.pin_base(), 9);
        assert_eq!(ClbSlot::LutF.num_inputs(), 4);
        assert_eq!(ClbSlot::FfB.num_inputs(), 1);
    }

    #[test]
    fn slot_kinds() {
        assert!(ClbSlot::LutF.is_lut());
        assert!(ClbSlot::FfA.is_ff());
    }

    #[test]
    fn proxy_coord_clamps_to_grid() {
        let north = BelLoc::Iob(IobSite {
            side: IobSide::North,
            pos: 99,
            k: 0,
        });
        assert_eq!(north.proxy_coord(10, 8), Coord::new(9, 7));
        let west = BelLoc::Iob(IobSite {
            side: IobSide::West,
            pos: 3,
            k: 1,
        });
        assert_eq!(west.proxy_coord(10, 8), Coord::new(0, 3));
        let clb = BelLoc::clb(4, 5, ClbSlot::LutG);
        assert_eq!(clb.proxy_coord(10, 8), Coord::new(4, 5));
        assert_eq!(clb.coord(), Some(Coord::new(4, 5)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(BelLoc::clb(1, 2, ClbSlot::LutF).to_string(), "CLB(1,2).F");
        let site = IobSite {
            side: IobSide::East,
            pos: 7,
            k: 1,
        };
        assert_eq!(site.to_string(), "IOB-E7#1");
    }
}

//! Delay model and static timing analysis.
//!
//! Table 1 of the paper reports a *timing overhead* column: the change
//! in post-route critical path caused by tiling constraints. This
//! module computes that critical path. Two accuracy levels exist:
//!
//! * [`TimingReport::analyze_routed`] — sums intrinsic RRG node delays
//!   along each net's actual route (post-route signoff);
//! * [`TimingReport::analyze_placed`] — estimates net delays from
//!   placement Manhattan distance (pre-route, used inside the placer).

use netlist::{CellId, CellKind, Netlist, NetlistError};

use crate::device::Device;
use crate::placedb::Placement;
use crate::routedb::Routing;
use crate::rrg::RoutingGraph;

/// Logic-element delays, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// LUT look-up delay.
    pub lut: f64,
    /// Flip-flop clock-to-Q delay.
    pub ff_clk_to_q: f64,
    /// Flip-flop setup requirement.
    pub ff_setup: f64,
    /// Estimated net delay intercept (pre-route model).
    pub est_base: f64,
    /// Estimated net delay per CLB of Manhattan distance.
    pub est_per_clb: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        Self {
            lut: 1.2,
            ff_clk_to_q: 0.8,
            ff_setup: 0.4,
            est_base: 0.8,
            est_per_clb: 0.35,
        }
    }
}

/// Result of a static timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Critical-path delay in nanoseconds (max over all endpoints).
    pub critical_ns: f64,
    /// The endpoint cell of the critical path (PO or FF D-pin).
    pub worst_endpoint: Option<CellId>,
    /// Cells along the critical path, endpoint last.
    pub critical_path: Vec<CellId>,
}

impl TimingReport {
    /// Maximum clock frequency implied by the critical path, in MHz.
    pub fn fmax_mhz(&self) -> f64 {
        if self.critical_ns <= 0.0 {
            f64::INFINITY
        } else {
            1000.0 / self.critical_ns
        }
    }

    /// Post-route analysis using actual route-tree delays.
    ///
    /// Nets without a route fall back to the placement estimate when
    /// `placement` knows both endpoints, else to the model intercept.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`] from ordering.
    pub fn analyze_routed(
        nl: &Netlist,
        device: &Device,
        placement: &Placement,
        routing: &Routing,
        rrg: &RoutingGraph,
        model: &DelayModel,
    ) -> Result<Self, NetlistError> {
        analyze(nl, model, |net, sink_idx| {
            routing
                .route(net)
                .and_then(|tree| tree.sink_delay(rrg, sink_idx))
                .unwrap_or_else(|| estimate(nl, device, placement, model, net, sink_idx))
        })
    }

    /// Pre-route analysis using Manhattan-distance estimates.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`] from ordering.
    pub fn analyze_placed(
        nl: &Netlist,
        device: &Device,
        placement: &Placement,
        model: &DelayModel,
    ) -> Result<Self, NetlistError> {
        analyze(nl, model, |net, sink_idx| {
            estimate(nl, device, placement, model, net, sink_idx)
        })
    }
}

fn estimate(
    nl: &Netlist,
    device: &Device,
    placement: &Placement,
    model: &DelayModel,
    net: netlist::NetId,
    sink_idx: usize,
) -> f64 {
    let Ok(n) = nl.net(net) else {
        return model.est_base;
    };
    let (Some(driver), Some(sink)) = (n.driver, n.sinks.get(sink_idx)) else {
        return model.est_base;
    };
    let (Some(dl), Some(sl)) = (placement.loc_of(driver), placement.loc_of(sink.cell)) else {
        return model.est_base;
    };
    let a = dl.proxy_coord(device.width(), device.height());
    let b = sl.proxy_coord(device.width(), device.height());
    model.est_base + model.est_per_clb * a.manhattan(b) as f64
}

fn analyze(
    nl: &Netlist,
    model: &DelayModel,
    net_sink_delay: impl Fn(netlist::NetId, usize) -> f64,
) -> Result<TimingReport, NetlistError> {
    let order = nl.topo_order()?;
    let cap = nl.cell_capacity();
    let mut arrival = vec![0.0f64; cap];
    let mut pred: Vec<Option<CellId>> = vec![None; cap];

    // Worst (arrival + net delay) over a cell's fanins.
    fn best_input(
        nl: &Netlist,
        arrival: &[f64],
        net_sink_delay: &impl Fn(netlist::NetId, usize) -> f64,
        cell: CellId,
    ) -> Result<(f64, Option<CellId>), NetlistError> {
        let c = nl.cell(cell)?;
        let mut best = 0.0f64;
        let mut from = None;
        for &net in &c.inputs {
            let n = nl.net(net)?;
            let Some(driver) = n.driver else { continue };
            let sink_idx = n.sinks.iter().position(|s| s.cell == cell).unwrap_or(0);
            let t = arrival[driver.index()] + net_sink_delay(net, sink_idx);
            if t >= best {
                best = t;
                from = Some(driver);
            }
        }
        Ok((best, from))
    }

    let mut endpoints: Vec<(f64, CellId)> = Vec::new();
    for id in order {
        let cell = nl.cell(id)?;
        match &cell.kind {
            CellKind::Input => arrival[id.index()] = 0.0,
            CellKind::Ff { .. } => {
                // Launch side: Q is available clk-to-Q after the edge.
                arrival[id.index()] = model.ff_clk_to_q;
            }
            CellKind::Lut(_) => {
                let (t, from) = best_input(nl, &arrival, &net_sink_delay, id)?;
                arrival[id.index()] = t + model.lut;
                pred[id.index()] = from;
            }
            CellKind::Output => {
                let (t, from) = best_input(nl, &arrival, &net_sink_delay, id)?;
                arrival[id.index()] = t;
                pred[id.index()] = from;
                endpoints.push((t, id));
            }
        }
    }
    // Capture side of every flip-flop: arrival at D plus setup.
    for (id, cell) in nl.cells() {
        if !cell.is_sequential() {
            continue;
        }
        let (t, from) = best_input(nl, &arrival, &net_sink_delay, id)?;
        if from.is_some() || t > 0.0 {
            endpoints.push((t + model.ff_setup, id));
            // Record the capture-path predecessor without clobbering
            // the launch-side arrival.
            pred[id.index()] = from.or(pred[id.index()]);
        }
    }

    let worst = endpoints.iter().cloned().max_by(|a, b| a.0.total_cmp(&b.0));
    let (critical_ns, worst_endpoint) = match worst {
        Some((t, id)) => (t, Some(id)),
        None => (0.0, None),
    };
    let mut critical_path = Vec::new();
    let mut cur = worst_endpoint;
    let mut hops = 0;
    while let Some(id) = cur {
        critical_path.push(id);
        cur = pred[id.index()];
        hops += 1;
        if hops > cap {
            break; // defensive: predecessor chains cannot exceed cells
        }
    }
    critical_path.reverse();
    Ok(TimingReport {
        critical_ns,
        worst_endpoint,
        critical_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bel::{BelLoc, ClbSlot};
    use netlist::TruthTable;

    /// a -> lut1 -> lut2 -> y
    fn chain() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let l1 = nl
            .add_lut("l1", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        let l2 = nl
            .add_lut("l2", TruthTable::not(), &[nl.cell_output(l1).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(l2).unwrap()).unwrap();
        nl
    }

    fn placed_chain(spread: u16) -> (Netlist, Device, Placement) {
        let nl = chain();
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut p = Placement::new(nl.cell_capacity());
        let a = nl.find_cell("a").unwrap();
        let l1 = nl.find_cell("l1").unwrap();
        let l2 = nl.find_cell("l2").unwrap();
        let y = nl.find_cell("y").unwrap();
        p.place(
            a,
            BelLoc::Iob(crate::IobSite {
                side: crate::IobSide::West,
                pos: 0,
                k: 0,
            }),
        )
        .unwrap();
        p.place(l1, BelLoc::clb(0, 0, ClbSlot::LutF)).unwrap();
        p.place(l2, BelLoc::clb(spread, 0, ClbSlot::LutF)).unwrap();
        // Output pad on the west edge so total path length grows with
        // `spread` (out and back) instead of staying constant.
        p.place(
            y,
            BelLoc::Iob(crate::IobSite {
                side: crate::IobSide::West,
                pos: 1,
                k: 0,
            }),
        )
        .unwrap();
        (nl, dev, p)
    }

    #[test]
    fn placed_estimate_monotone_in_distance() {
        let (nl, dev, p1) = placed_chain(1);
        let (nl2, dev2, p2) = placed_chain(7);
        let m = DelayModel::default();
        let t1 = TimingReport::analyze_placed(&nl, &dev, &p1, &m).unwrap();
        let t2 = TimingReport::analyze_placed(&nl2, &dev2, &p2, &m).unwrap();
        assert!(t2.critical_ns > t1.critical_ns);
        assert!(t1.fmax_mhz() > t2.fmax_mhz());
    }

    #[test]
    fn critical_path_walks_the_chain() {
        let (nl, dev, p) = placed_chain(3);
        let m = DelayModel::default();
        let t = TimingReport::analyze_placed(&nl, &dev, &p, &m).unwrap();
        let names: Vec<&str> = t
            .critical_path
            .iter()
            .map(|&c| nl.cell(c).unwrap().name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "l1", "l2", "y"]);
        assert_eq!(t.worst_endpoint, nl.find_cell("y"));
    }

    #[test]
    fn ff_paths_include_setup_and_clk_to_q() {
        let mut nl = Netlist::new("seq");
        let seed = nl.add_net("seed").unwrap();
        let ff = nl.add_ff("q", false, seed).unwrap();
        let q = nl.cell_output(ff).unwrap();
        let inv = nl.add_lut("inv", TruthTable::not(), &[q]).unwrap();
        nl.set_pin(ff, 0, nl.cell_output(inv).unwrap()).unwrap();
        nl.add_output("out", q).unwrap();
        let dev = Device::new(4, 4, 4, 2).unwrap();
        let mut p = Placement::new(nl.cell_capacity());
        p.place(ff, BelLoc::clb(0, 0, ClbSlot::FfA)).unwrap();
        p.place(inv, BelLoc::clb(0, 0, ClbSlot::LutF)).unwrap();
        let m = DelayModel::default();
        let t = TimingReport::analyze_placed(&nl, &dev, &p, &m).unwrap();
        // clk->q + net + lut + net + setup, nets at distance 0.
        let expect = m.ff_clk_to_q + m.est_base + m.lut + m.est_base + m.ff_setup;
        assert!(
            (t.critical_ns - expect).abs() < 1e-9,
            "{} vs {expect}",
            t.critical_ns
        );
    }

    #[test]
    fn empty_design_has_zero_delay() {
        let nl = Netlist::new("empty");
        let dev = Device::new(2, 2, 2, 2).unwrap();
        let p = Placement::new(0);
        let t = TimingReport::analyze_placed(&nl, &dev, &p, &DelayModel::default()).unwrap();
        assert_eq!(t.critical_ns, 0.0);
        assert!(t.worst_endpoint.is_none());
        assert!(t.fmax_mhz().is_infinite());
    }

    #[test]
    fn routed_analysis_prefers_route_delays() {
        let (nl, dev, p) = placed_chain(3);
        let rrg = RoutingGraph::new(&dev);
        let mut routing = Routing::new(rrg.num_nodes());
        // Route only l1->l2 with a tiny direct path.
        let l1 = nl.find_cell("l1").unwrap();
        let net = nl.cell_output(l1).unwrap();
        routing.set_route(
            net,
            crate::routedb::RouteTree {
                paths: vec![vec![
                    rrg.opin(crate::Coord::new(0, 0), ClbSlot::LutF),
                    rrg.chanx(0, 1, 0),
                    rrg.ipin(crate::Coord::new(0, 0), 4),
                ]],
            },
        );
        let m = DelayModel::default();
        let routed = TimingReport::analyze_routed(&nl, &dev, &p, &routing, &rrg, &m).unwrap();
        let placed = TimingReport::analyze_placed(&nl, &dev, &p, &m).unwrap();
        // The routed l1->l2 hop (1.05ns) is cheaper than the 3-CLB
        // estimate (0.8 + 3*0.35 = 1.85ns).
        assert!(routed.critical_ns < placed.critical_ns);
    }
}

//! Grid coordinates and rectangular regions.

use std::fmt;

/// Position of a CLB on the logic grid (column `x`, row `y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Column, 0-based from the west edge.
    pub x: u16,
    /// Row, 0-based from the south edge.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// An inclusive rectangle of CLB coordinates — the footprint of a tile.
///
/// ```
/// use fpga::{Coord, Rect};
/// let r = Rect::new(2, 2, 4, 5);
/// assert!(r.contains(Coord::new(3, 4)));
/// assert_eq!(r.area(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// West-most column (inclusive).
    pub x0: u16,
    /// South-most row (inclusive).
    pub y0: u16,
    /// East-most column (inclusive).
    pub x1: u16,
    /// North-most row (inclusive).
    pub y1: u16,
}

impl Rect {
    /// Creates a rectangle from inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `x0 > x1` or `y0 > y1`.
    pub fn new(x0: u16, y0: u16, x1: u16, y1: u16) -> Self {
        assert!(x0 <= x1 && y0 <= y1, "degenerate rectangle");
        Self { x0, y0, x1, y1 }
    }

    /// A 1×1 rectangle at `c`.
    pub fn at(c: Coord) -> Self {
        Self::new(c.x, c.y, c.x, c.y)
    }

    /// Width in CLBs.
    pub fn width(&self) -> u16 {
        self.x1 - self.x0 + 1
    }

    /// Height in CLBs.
    pub fn height(&self) -> u16 {
        self.y1 - self.y0 + 1
    }

    /// Number of CLB positions covered.
    pub fn area(&self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// True if `c` lies inside.
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.x0 && c.x <= self.x1 && c.y >= self.y0 && c.y <= self.y1
    }

    /// True if the rectangles share at least one CLB.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// True if the rectangles share an edge (4-adjacency, no overlap).
    pub fn is_adjacent(&self, other: &Rect) -> bool {
        if self.intersects(other) {
            return false;
        }
        let horizontal_touch = (self.x1 + 1 == other.x0 || other.x1 + 1 == self.x0)
            && self.y0 <= other.y1
            && other.y0 <= self.y1;
        let vertical_touch = (self.y1 + 1 == other.y0 || other.y1 + 1 == self.y0)
            && self.x0 <= other.x1
            && other.x0 <= self.x1;
        horizontal_touch || vertical_touch
    }

    /// The smallest rectangle containing both.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Iterates over all covered coordinates, row-major.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let (x0, x1, y0, y1) = (self.x0, self.x1, self.y0, self.y1);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| Coord::new(x, y)))
    }

    /// Center of the rectangle (rounded down).
    pub fn center(&self) -> Coord {
        Coord::new((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]x[{},{}]", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(1, 1).manhattan(Coord::new(4, 3)), 5);
        assert_eq!(Coord::new(2, 2).manhattan(Coord::new(2, 2)), 0);
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::new(0, 0, 3, 1);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 2);
        assert_eq!(r.area(), 8);
        assert_eq!(r.iter().count(), 8);
        assert_eq!(r.center(), Coord::new(1, 0));
    }

    #[test]
    fn containment_and_intersection() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(2, 2, 4, 4);
        let c = Rect::new(3, 0, 5, 1);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains(Coord::new(2, 2)));
        assert!(!a.contains(Coord::new(3, 0)));
    }

    #[test]
    fn adjacency_requires_shared_edge() {
        let a = Rect::new(0, 0, 1, 1);
        let right = Rect::new(2, 0, 3, 1);
        let above = Rect::new(0, 2, 1, 3);
        let diagonal = Rect::new(2, 2, 3, 3);
        let far = Rect::new(5, 5, 6, 6);
        assert!(a.is_adjacent(&right));
        assert!(a.is_adjacent(&above));
        assert!(!a.is_adjacent(&diagonal)); // corner contact only
        assert!(!a.is_adjacent(&far));
        assert!(!a.is_adjacent(&a)); // overlap is not adjacency
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0, 0, 1, 1);
        let b = Rect::new(3, 2, 4, 5);
        let u = a.union(&b);
        assert!(u.contains(Coord::new(0, 0)));
        assert!(u.contains(Coord::new(4, 5)));
        assert_eq!(u, Rect::new(0, 0, 4, 5));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_rect_panics() {
        let _ = Rect::new(2, 0, 1, 0);
    }
}

//! # fpga-debug-tiling
//!
//! A from-scratch reproduction of *"Efficient Error Detection,
//! Localization, and Correction for FPGA-Based Debugging"* (Lach,
//! Mangione-Smith, Potkonjak — DAC 2000), including the entire CAD
//! substrate the paper sits on: an XC4000-style device model,
//! simulated-annealing placement, PathFinder routing, a cycle-accurate
//! emulation substrate, benchmark generators for all nine evaluation
//! designs, and the paper's contribution — **tiling**: physical-design
//! partitioning that confines each debugging iteration's
//! re-place-and-route to the affected tiles.
//!
//! This crate is a facade: it re-exports the workspace crates and adds
//! one convenience entry point, [`implement_paper_design`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use fpga_debug_tiling::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate + map the paper's 9sym benchmark, implement it with 20%
//! // slack, 10 tiles, locked interfaces.
//! let mut td = fpga_debug_tiling::implement_paper_design(
//!     PaperDesign::NineSym,
//!     TilingOptions::default(),
//! )?;
//!
//! // Plant a design error, then run one full debug iteration:
//! // detect -> localize (observation-tap ECOs) -> correct. The
//! // session's strategy and physical flow are pluggable.
//! let golden = td.netlist.clone();
//! let error = sim::inject::random_error(&mut td.netlist, 7)?;
//! let outcome = DebugSession::new(&mut td, &golden)
//!     .strategy(BinarySearch::new())
//!     .seed(42)
//!     .run(&error)?;
//! assert!(outcome.repaired);
//! println!("per-phase effort:\n{}", outcome.ledger);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fpga;
pub use netlist;
pub use place;
pub use route;
pub use sim;
pub use synth;
pub use tiling;

use synth::PaperDesign;
use tiling::{TiledDesign, TilingError, TilingOptions};

/// Generates one of the paper's nine designs and runs the full tiled
/// implementation flow on it (place with slack → route → partition →
/// lock interfaces).
///
/// # Errors
///
/// Propagates generation and implementation failures.
pub fn implement_paper_design(
    design: PaperDesign,
    options: TilingOptions,
) -> Result<TiledDesign, TilingError> {
    let bundle = design.generate()?;
    tiling::implement(bundle.netlist, bundle.hierarchy, options)
}

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use fpga::{BelLoc, ClbSlot, Coord, Device, Placement, Rect, Routing, RoutingGraph};
    pub use netlist::{CellId, CellKind, EcoOp, Hierarchy, NetId, Netlist, TruthTable};
    pub use sim::{PatternGen, Simulator};
    pub use synth::{DesignBundle, PaperDesign};
    pub use tiling::{
        AffectedSet, BinarySearch, CadEffort, CampaignOutcome, ClusterOutcome, ConcurrentOutcome,
        ConePartition, DebugEvent, DebugOutcome, DebugReport, DebugSession, EffortLedger,
        EvidenceBase, FailureCluster, FaultAttribution, FullReplaceFlow, IncrementalFlow,
        LinearBatches, LocalizationStrategy, MultiErrorScheduler, ObservationWindow, PatternSpec,
        Phase, QuickEcoFlow, ReimplFlow, ResponseSignature, SuspectCone, TileId, TilePlan,
        TiledDesign, TiledFlow, TilingError, TilingOptions,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_implements_a_design() {
        let td = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(1)).unwrap();
        assert!(td.routing.is_feasible());
    }
}
